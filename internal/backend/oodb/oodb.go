// Package oodb maps the HyperModel schema onto the repository's own
// object store — the architecture class of the OODBs the benchmark was
// written for (GemStone, Vbase):
//
//   - every node is one persistent object holding its attributes and
//     relationship collections, addressed by a system OID;
//   - a B+tree key index maps uniqueId → OID (the O1 path); O2 goes
//     straight through the object table;
//   - B+tree secondary indexes on hundred and million serve the range
//     lookups as covering index scans;
//   - the clustering near-hint places children next to their parents
//     along the 1-N hierarchy (§5.2), which is what makes closure1N
//     beat closureMN cold (E7) and what the E11 ablation switches off;
//   - all pages flow through the store's buffer pool, so DropCaches
//     produces genuine cold runs and Commit is WAL-durable.
package oodb

import (
	"errors"
	"fmt"
	"sync"

	"hypermodel/internal/btree"
	"hypermodel/internal/hyper"
	"hypermodel/internal/objstore"
	"hypermodel/internal/storage/store"
)

// Root slots used in the page store's root directory.
const (
	rootObjTable = iota
	rootObjMeta
	rootUniqueIdx
	rootHundredIdx
	rootMillionIdx
	rootBlobIdx
	rootCatalog
)

// Options configure the backend.
type Options struct {
	// Clustering enables placement of children near parents. On by
	// default in New; the E11 ablation disables it.
	Clustering bool
	// Scatter deliberately de-clusters object placement (see
	// objstore.Options.ScatterWindow); the E11 ablation's "no
	// clustering" configuration. Ignored when Clustering is true.
	Scatter bool
	// Store tunes the underlying page store (pool size, checkpointing).
	Store store.Options
}

// DefaultOptions enables clustering with default store tuning.
func DefaultOptions() Options { return Options{Clustering: true} }

// Space is what the backend needs from its page layer: the core page
// operations plus cache control and lifecycle. Both the local
// store.Store and the remote page-server client satisfy it, which is
// how the same object-database mapping runs in the workstation/server
// configuration (R6).
type Space interface {
	store.Space
	DropCache() error
	Abort() error
	Close() error
	CacheStats() (hits, misses, reads uint64)
}

// DB implements hyper.Backend over the object store.
type DB struct {
	st    Space
	objs  *objstore.Store
	uniq  *btree.Tree // uniqueId → OID
	hidx  *btree.Tree // (hundred, uniqueId) → nil
	midx  *btree.Tree // (million, uniqueId) → nil
	blobs *btree.Tree // blob name → blob OID
	cat   *btree.Tree // dynamic schema catalog

	// oidCache short-circuits uniqueId → OID resolution with mappings
	// learned from activated objects, whose relationship collections
	// already carry the target OIDs — navigating a loaded object's refs
	// skips the uniq index entirely, like a real OODB's pointer
	// traversal. Nodes are never deleted, so committed mappings cannot
	// go stale; the cache is dropped whenever a transaction's reads may
	// have been invalid (Abort, failed Commit) and on DropCaches, which
	// promises a genuinely cold next run.
	//
	// oidMu guards oidCache: every object activation writes learned
	// mappings into it, so even read-only operations mutate the map and
	// concurrent readers sharing one DB would race without it.
	oidMu    sync.Mutex
	oidCache map[hyper.NodeID]uint64

	// ro is set when the space is a read-only view (a snapshot):
	// mutating entry points then fail with store.ErrReadOnly instead of
	// tripping the view's MarkDirty panic somewhere inside a B-tree
	// update.
	ro bool
}

var (
	_ hyper.DB             = (*DB)(nil)
	_ hyper.SchemaModifier = (*DB)(nil)
	_ hyper.StatsReporter  = (*DB)(nil)
)

// Open opens (or creates) an oodb database at path.
func Open(path string, opts Options) (*DB, error) {
	st, err := store.Open(path, &opts.Store)
	if err != nil {
		return nil, err
	}
	db, err := New(st, opts)
	if err != nil {
		st.Close()
		return nil, err
	}
	return db, nil
}

// New wires the object-database mapping over an existing page space
// (local store or remote page-server client).
func New(st Space, opts Options) (*DB, error) {
	oopts := objstore.Options{Clustering: opts.Clustering}
	if opts.Scatter && !opts.Clustering {
		oopts.ScatterWindow = 64
	}
	objs, err := objstore.Open(st, rootObjTable, rootObjMeta, oopts)
	if err != nil {
		return nil, err
	}
	uniq, err := btree.Open(st, rootUniqueIdx)
	if err != nil {
		return nil, err
	}
	hidx, err := btree.Open(st, rootHundredIdx)
	if err != nil {
		return nil, err
	}
	midx, err := btree.Open(st, rootMillionIdx)
	if err != nil {
		return nil, err
	}
	blobs, err := btree.Open(st, rootBlobIdx)
	if err != nil {
		return nil, err
	}
	cat, err := btree.Open(st, rootCatalog)
	if err != nil {
		return nil, err
	}
	db := &DB{st: st, objs: objs, uniq: uniq, hidx: hidx, midx: midx, blobs: blobs, cat: cat}
	if rv, ok := st.(interface{ ReadOnly() bool }); ok && rv.ReadOnly() {
		db.ro = true
	}
	return db, nil
}

// writable guards every mutating entry point: a DB opened over a
// read-only view (DB.Snapshot) rejects updates at the API boundary.
func (d *DB) writable() error {
	if d.ro {
		return store.ErrReadOnly
	}
	return nil
}

func (d *DB) Name() string { return "oodb" }

// Store exposes the underlying page space (harness diagnostics).
func (d *DB) Store() Space { return d.st }

func (d *DB) oidOf(id hyper.NodeID) (objstore.OID, error) {
	d.oidMu.Lock()
	oid, ok := d.oidCache[id]
	d.oidMu.Unlock()
	if ok {
		return objstore.OID(oid), nil
	}
	v, ok, err := d.uniq.Get(btree.U64Key(uint64(id)))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: node %d", hyper.ErrNotFound, id)
	}
	return objstore.OID(btree.U64FromKey(v)), nil
}

// noteObject records the id→OID mappings an activated object carries:
// its own identity plus every relationship target. Only decoded
// storage bytes feed the cache, so a hit is as authoritative as a uniq
// index probe.
func (d *DB) noteObject(oid objstore.OID, o *object) {
	d.oidMu.Lock()
	defer d.oidMu.Unlock()
	if d.oidCache == nil {
		d.oidCache = make(map[hyper.NodeID]uint64, 256)
	}
	d.oidCache[o.node.ID] = uint64(oid)
	if o.parentOID != 0 {
		d.oidCache[o.parentID] = o.parentOID
	}
	for _, r := range o.children {
		d.oidCache[r.id] = r.oid
	}
	for _, r := range o.parts {
		d.oidCache[r.id] = r.oid
	}
	for _, r := range o.partOf {
		d.oidCache[r.id] = r.oid
	}
	for _, e := range o.refsTo {
		d.oidCache[e.id] = e.oid
	}
	for _, e := range o.refsFrom {
		d.oidCache[e.id] = e.oid
	}
}

func (d *DB) load(id hyper.NodeID) (objstore.OID, *object, error) {
	oid, err := d.oidOf(id)
	if err != nil {
		return 0, nil, err
	}
	o, err := d.loadByOID(oid)
	return oid, o, err
}

func (d *DB) loadByOID(oid objstore.OID) (*object, error) {
	data, err := d.objs.Get(oid)
	if err != nil {
		if errors.Is(err, objstore.ErrNotFound) {
			return nil, fmt.Errorf("%w: oid %d", hyper.ErrNotFound, oid)
		}
		return nil, err
	}
	o, err := decodeObject(data)
	if err != nil {
		return nil, err
	}
	d.noteObject(oid, o)
	return o, nil
}

func (d *DB) storeObj(oid objstore.OID, o *object) error {
	return d.objs.Update(oid, encodeObject(o))
}

func (d *DB) create(n hyper.Node, text []byte, form []byte, near hyper.NodeID) error {
	if err := d.writable(); err != nil {
		return err
	}
	if _, ok, err := d.uniq.Get(btree.U64Key(uint64(n.ID))); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("oodb: node %d already exists", n.ID)
	}
	var nearOID objstore.OID
	if near != 0 {
		if oid, err := d.oidOf(near); err == nil {
			nearOID = oid
		}
	}
	o := &object{node: n, text: text, form: form}
	oid, err := d.objs.Put(encodeObject(o), nearOID)
	if err != nil {
		return err
	}
	if err := d.uniq.Put(btree.U64Key(uint64(n.ID)), btree.U64Key(uint64(oid))); err != nil {
		return err
	}
	if err := d.hidx.Put(btree.U32U64Key(uint32(n.Hundred), uint64(n.ID)), nil); err != nil {
		return err
	}
	return d.midx.Put(btree.U32U64Key(uint32(n.Million), uint64(n.ID)), nil)
}

// CreateNode stores an interior node, clustered near the given node.
func (d *DB) CreateNode(n hyper.Node, near hyper.NodeID) error {
	return d.create(n, nil, nil, near)
}

// CreateTextNode stores a TextNode leaf.
func (d *DB) CreateTextNode(n hyper.Node, text string, near hyper.NodeID) error {
	return d.create(n, []byte(text), nil, near)
}

// CreateFormNode stores a FormNode leaf.
func (d *DB) CreateFormNode(n hyper.Node, bm hyper.Bitmap, near hyper.NodeID) error {
	return d.create(n, nil, hyper.EncodeBitmap(bm), near)
}

// AddChild appends child to parent's ordered children.
func (d *DB) AddChild(parent, child hyper.NodeID) error {
	if err := d.writable(); err != nil {
		return err
	}
	pOID, p, err := d.load(parent)
	if err != nil {
		return err
	}
	cOID, c, err := d.load(child)
	if err != nil {
		return err
	}
	if c.parentOID != 0 {
		return fmt.Errorf("oodb: node %d already has a parent", child)
	}
	p.children = append(p.children, ref{uint64(cOID), child})
	if err := d.storeObj(pOID, p); err != nil {
		return err
	}
	c.parentOID = uint64(pOID)
	c.parentID = parent
	return d.storeObj(cOID, c)
}

// AddPart relates part to whole in the M-N aggregation.
func (d *DB) AddPart(whole, part hyper.NodeID) error {
	if err := d.writable(); err != nil {
		return err
	}
	wOID, w, err := d.load(whole)
	if err != nil {
		return err
	}
	pOID, p, err := d.load(part)
	if err != nil {
		return err
	}
	w.parts = append(w.parts, ref{uint64(pOID), part})
	if err := d.storeObj(wOID, w); err != nil {
		return err
	}
	p.partOf = append(p.partOf, ref{uint64(wOID), whole})
	return d.storeObj(pOID, p)
}

// AddRef stores a refTo/refFrom association with offsets.
func (d *DB) AddRef(e hyper.Edge) error {
	if err := d.writable(); err != nil {
		return err
	}
	fOID, f, err := d.load(e.From)
	if err != nil {
		return err
	}
	tOID, tObj, err := d.load(e.To)
	if err != nil {
		return err
	}
	f.refsTo = append(f.refsTo, edgeRef{uint64(tOID), e.To, e.OffsetFrom, e.OffsetTo})
	if err := d.storeObj(fOID, f); err != nil {
		return err
	}
	if e.From == e.To {
		// Self-edge: reload so we do not clobber the refsTo append.
		tObj, err = d.loadByOID(tOID)
		if err != nil {
			return err
		}
	}
	tObj.refsFrom = append(tObj.refsFrom, edgeRef{uint64(fOID), e.From, e.OffsetFrom, e.OffsetTo})
	return d.storeObj(tOID, tObj)
}

// Node returns a node's attributes.
func (d *DB) Node(id hyper.NodeID) (hyper.Node, error) {
	_, o, err := d.load(id)
	if err != nil {
		return hyper.Node{}, err
	}
	return o.node, nil
}

// Hundred returns the hundred attribute via the key index (O1's path).
func (d *DB) Hundred(id hyper.NodeID) (int32, error) {
	_, o, err := d.load(id)
	if err != nil {
		return 0, err
	}
	return o.node.Hundred, nil
}

// SetHundred updates the attribute and maintains the secondary index.
func (d *DB) SetHundred(id hyper.NodeID, v int32) error {
	if err := d.writable(); err != nil {
		return err
	}
	oid, o, err := d.load(id)
	if err != nil {
		return err
	}
	if o.node.Hundred == v {
		return nil
	}
	if _, err := d.hidx.Delete(btree.U32U64Key(uint32(o.node.Hundred), uint64(id))); err != nil {
		return err
	}
	o.node.Hundred = v
	if err := d.storeObj(oid, o); err != nil {
		return err
	}
	return d.hidx.Put(btree.U32U64Key(uint32(v), uint64(id)), nil)
}

// OIDOf translates a uniqueId into the system OID.
func (d *DB) OIDOf(id hyper.NodeID) (hyper.OID, error) {
	oid, err := d.oidOf(id)
	return hyper.OID(oid), err
}

// HundredByOID is O2: direct object-table access, no key index.
func (d *DB) HundredByOID(oid hyper.OID) (int32, error) {
	o, err := d.loadByOID(objstore.OID(oid))
	if err != nil {
		return 0, err
	}
	return o.node.Hundred, nil
}

// RangeHundred is a covering scan of the hundred index.
func (d *DB) RangeHundred(lo, hi int32) ([]hyper.NodeID, error) {
	return scanAttrIndex(d.hidx, lo, hi)
}

// RangeMillion is a covering scan of the million index.
func (d *DB) RangeMillion(lo, hi int32) ([]hyper.NodeID, error) {
	return scanAttrIndex(d.midx, lo, hi)
}

func scanAttrIndex(t *btree.Tree, lo, hi int32) ([]hyper.NodeID, error) {
	var out []hyper.NodeID
	from := btree.U32U64Key(uint32(lo), 0)
	to := btree.U32U64Key(uint32(hi)+1, 0)
	err := t.Scan(from, to, func(k, _ []byte) (bool, error) {
		_, id := btree.U32U64FromKey(k)
		out = append(out, hyper.NodeID(id))
		return true, nil
	})
	return out, err
}

// Children returns the ordered children from the parent's object.
func (d *DB) Children(id hyper.NodeID) ([]hyper.NodeID, error) {
	_, o, err := d.load(id)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.NodeID, len(o.children))
	for i, r := range o.children {
		out[i] = r.id
	}
	return out, nil
}

// Parts returns the M-N parts.
func (d *DB) Parts(id hyper.NodeID) ([]hyper.NodeID, error) {
	_, o, err := d.load(id)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.NodeID, len(o.parts))
	for i, r := range o.parts {
		out[i] = r.id
	}
	return out, nil
}

// RefsTo returns the outgoing association edges.
func (d *DB) RefsTo(id hyper.NodeID) ([]hyper.Edge, error) {
	_, o, err := d.load(id)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.Edge, len(o.refsTo))
	for i, e := range o.refsTo {
		out[i] = hyper.Edge{From: id, To: e.id, OffsetFrom: e.offFrom, OffsetTo: e.offTo}
	}
	return out, nil
}

// Parent returns the 1-N parent.
func (d *DB) Parent(id hyper.NodeID) (hyper.NodeID, bool, error) {
	_, o, err := d.load(id)
	if err != nil {
		return 0, false, err
	}
	return o.parentID, o.parentOID != 0, nil
}

// PartOf returns the wholes this node is part of.
func (d *DB) PartOf(id hyper.NodeID) ([]hyper.NodeID, error) {
	_, o, err := d.load(id)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.NodeID, len(o.partOf))
	for i, r := range o.partOf {
		out[i] = r.id
	}
	return out, nil
}

// RefsFrom returns the incoming association edges.
func (d *DB) RefsFrom(id hyper.NodeID) ([]hyper.Edge, error) {
	_, o, err := d.load(id)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.Edge, len(o.refsFrom))
	for i, e := range o.refsFrom {
		out[i] = hyper.Edge{From: e.id, To: id, OffsetFrom: e.offFrom, OffsetTo: e.offTo}
	}
	return out, nil
}

// ScanTen walks the uniqueId index over [first, last] and activates
// each object for its ten attribute.
func (d *DB) ScanTen(first, last hyper.NodeID, visit func(hyper.NodeID, int32) bool) error {
	from := btree.U64Key(uint64(first))
	to := btree.U64Key(uint64(last) + 1)
	var stop bool
	err := d.uniq.Scan(from, to, func(k, v []byte) (bool, error) {
		o, err := d.loadByOID(objstore.OID(btree.U64FromKey(v)))
		if err != nil {
			return false, err
		}
		if !visit(hyper.NodeID(btree.U64FromKey(k)), o.node.Ten) {
			stop = true
			return false, nil
		}
		return true, nil
	})
	_ = stop
	return err
}

func (d *DB) contentNode(id hyper.NodeID, want hyper.Kind) (objstore.OID, *object, error) {
	oid, o, err := d.load(id)
	if err != nil {
		return 0, nil, err
	}
	if o.node.Kind != want {
		return 0, nil, fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, o.node.Kind)
	}
	return oid, o, nil
}

// Text returns a TextNode's content.
func (d *DB) Text(id hyper.NodeID) (string, error) {
	_, o, err := d.contentNode(id, hyper.KindText)
	if err != nil {
		return "", err
	}
	return string(o.text), nil
}

// SetText replaces a TextNode's content.
func (d *DB) SetText(id hyper.NodeID, text string) error {
	if err := d.writable(); err != nil {
		return err
	}
	oid, o, err := d.contentNode(id, hyper.KindText)
	if err != nil {
		return err
	}
	o.text = []byte(text)
	return d.storeObj(oid, o)
}

// Form returns a FormNode's bitmap.
func (d *DB) Form(id hyper.NodeID) (hyper.Bitmap, error) {
	_, o, err := d.contentNode(id, hyper.KindForm)
	if err != nil {
		return hyper.Bitmap{}, err
	}
	return hyper.DecodeBitmap(o.form)
}

// SetForm replaces a FormNode's bitmap.
func (d *DB) SetForm(id hyper.NodeID, bm hyper.Bitmap) error {
	if err := d.writable(); err != nil {
		return err
	}
	oid, o, err := d.contentNode(id, hyper.KindForm)
	if err != nil {
		return err
	}
	o.form = hyper.EncodeBitmap(bm)
	return d.storeObj(oid, o)
}

func blobKey(key string) []byte { return append([]byte("b/"), key...) }

// PutBlob stores a named value as an object.
func (d *DB) PutBlob(key string, data []byte) error {
	if err := d.writable(); err != nil {
		return err
	}
	if v, ok, err := d.blobs.Get(blobKey(key)); err != nil {
		return err
	} else if ok {
		return d.objs.Update(objstore.OID(btree.U64FromKey(v)), data)
	}
	oid, err := d.objs.Put(data, objstore.InvalidOID)
	if err != nil {
		return err
	}
	return d.blobs.Put(blobKey(key), btree.U64Key(uint64(oid)))
}

// GetBlob retrieves a named value.
func (d *DB) GetBlob(key string) ([]byte, error) {
	v, ok, err := d.blobs.Get(blobKey(key))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: blob %q", hyper.ErrNotFound, key)
	}
	return d.objs.Get(objstore.OID(btree.U64FromKey(v)))
}

// DeleteBlob removes a named value (idempotent).
func (d *DB) DeleteBlob(key string) error {
	if err := d.writable(); err != nil {
		return err
	}
	v, ok, err := d.blobs.Get(blobKey(key))
	if err != nil || !ok {
		return err
	}
	if err := d.objs.Delete(objstore.OID(btree.U64FromKey(v))); err != nil {
		return err
	}
	_, err = d.blobs.Delete(blobKey(key))
	return err
}

// Commit makes all changes durable through the WAL. A failed commit
// (e.g. an optimistic-concurrency conflict over the page server) means
// the transaction's reads may have been invalid, so the OID cache they
// populated is dropped with it.
func (d *DB) Commit() error {
	if err := d.st.Commit(); err != nil {
		d.clearOIDCache()
		return err
	}
	return nil
}

func (d *DB) clearOIDCache() {
	d.oidMu.Lock()
	d.oidCache = nil
	d.oidMu.Unlock()
}

// DropCaches empties the buffer pool and the OID cache: the next run
// is cold.
func (d *DB) DropCaches() error {
	err := d.st.Commit()
	d.clearOIDCache()
	if err != nil {
		return err
	}
	return d.st.DropCache()
}

// Abort discards all uncommitted changes (rollback), including any OID
// mappings learned from the transaction's possibly-invalid reads.
func (d *DB) Abort() error {
	d.clearOIDCache()
	return d.st.Abort()
}

// Close commits, checkpoints and closes the store.
func (d *DB) Close() error { return d.st.Close() }

// CacheStats reports buffer pool hits/misses and disk (or server)
// reads.
func (d *DB) CacheStats() (hits, misses, diskReads uint64) {
	return d.st.CacheStats()
}

// Snapshot returns a read-only database pinned to the newest committed
// version of the underlying store: the same object mapping, opened
// over a store snapshot view, so long-running read closures see a
// stable state while commits proceed on the parent. A space without a
// version ring (the page-server client) returns ErrNoSnapshots.
func (d *DB) Snapshot() (hyper.DB, error) {
	sv, ok := d.st.(interface {
		Snapshot() (*store.SnapshotView, error)
	})
	if !ok {
		return nil, hyper.ErrNoSnapshots
	}
	view, err := sv.Snapshot()
	if err != nil {
		return nil, err
	}
	// Clustering options only shape writes; a read-only view doesn't
	// need them.
	return New(view, Options{})
}

// CommitStats reports the transaction counters of whichever layer the
// mapping sits on: the local store's flush/batching counters, or a
// page-server session's commit/conflict counters.
func (d *DB) CommitStats() hyper.CommitStats {
	if cs, ok := d.st.(interface{ CommitStats() store.CommitStats }); ok {
		s := cs.CommitStats()
		return hyper.CommitStats{
			Commits:      s.Commits,
			Flushes:      s.Flushes,
			GroupCommits: s.GroupCommits,
			GroupedTxns:  s.GroupedTxns,
			MaxBatch:     s.MaxBatch,
		}
	}
	if cs, ok := d.st.(interface{ CommitStats() (uint64, uint64) }); ok {
		commits, conflicts := cs.CommitStats()
		return hyper.CommitStats{Commits: commits, Conflicts: conflicts}
	}
	return hyper.CommitStats{}
}

// --- Dynamic schema (R4, §6.8 extension 1) ---

func classKey(name string) []byte { return append([]byte("c/"), name...) }
func attrKey(k hyper.Kind, a string) []byte {
	return append([]byte(fmt.Sprintf("a/%d/", k)), a...)
}
func uattrKey(id hyper.NodeID, a string) []byte {
	return append(btree.U64Key(uint64(id)), append([]byte("/u/"), a...)...)
}

// AddClass registers a new node class in the catalog.
func (d *DB) AddClass(name string) (hyper.Kind, error) {
	if err := d.writable(); err != nil {
		return 0, err
	}
	if _, ok, err := d.cat.Get(classKey(name)); err != nil {
		return 0, err
	} else if ok {
		return 0, fmt.Errorf("oodb: class %q already exists", name)
	}
	// Kinds are allocated densely from KindUser by counting classes.
	next := hyper.KindUser
	err := d.cat.Scan([]byte("c/"), btree.PrefixEnd([]byte("c/")), func(_, _ []byte) (bool, error) {
		next++
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	if err := d.cat.Put(classKey(name), []byte{byte(next)}); err != nil {
		return 0, err
	}
	return next, nil
}

// Classes lists the registered dynamic classes.
func (d *DB) Classes() (map[string]hyper.Kind, error) {
	out := map[string]hyper.Kind{}
	err := d.cat.Scan([]byte("c/"), btree.PrefixEnd([]byte("c/")), func(k, v []byte) (bool, error) {
		out[string(k[2:])] = hyper.Kind(v[0])
		return true, nil
	})
	return out, err
}

// AddAttribute declares a dynamic attribute on a class.
func (d *DB) AddAttribute(class hyper.Kind, attr string) error {
	if err := d.writable(); err != nil {
		return err
	}
	key := attrKey(class, attr)
	if _, ok, err := d.cat.Get(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("oodb: attribute %q already declared", attr)
	}
	return d.cat.Put(key, nil)
}

// SetAttr stores a dynamic attribute value on a node.
func (d *DB) SetAttr(id hyper.NodeID, attr string, v int64) error {
	if err := d.writable(); err != nil {
		return err
	}
	if _, err := d.oidOf(id); err != nil {
		return err
	}
	return d.cat.Put(uattrKey(id, attr), btree.U64Key(uint64(v)))
}

// Attr reads a dynamic attribute value from a node.
func (d *DB) Attr(id hyper.NodeID, attr string) (int64, bool, error) {
	if _, err := d.oidOf(id); err != nil {
		return 0, false, err
	}
	v, ok, err := d.cat.Get(uattrKey(id, attr))
	if err != nil || !ok {
		return 0, false, err
	}
	return int64(btree.U64FromKey(v)), true, nil
}

// GarbageCollect removes objects unreachable from the indexes (R10):
// anything not referenced by the uniqueId index or the blob directory
// is an orphan — typically debris from a crash between object creation
// and index maintenance. It returns the number of objects freed.
func (d *DB) GarbageCollect() (freed int, err error) {
	if err := d.writable(); err != nil {
		return 0, err
	}
	live := map[objstore.OID]bool{}
	collect := func(t *btree.Tree) error {
		return t.Scan(nil, nil, func(_, v []byte) (bool, error) {
			live[objstore.OID(btree.U64FromKey(v))] = true
			return true, nil
		})
	}
	if err := collect(d.uniq); err != nil {
		return 0, err
	}
	if err := collect(d.blobs); err != nil {
		return 0, err
	}
	freed, err = d.objs.Sweep(func(oid objstore.OID) bool { return live[oid] })
	if err != nil {
		return freed, err
	}
	return freed, d.st.Commit()
}

// Backup writes a consistent copy of the database file (R10). Only
// supported over a local page store; the page-server configuration
// backs up on the server side.
func (d *DB) Backup(destPath string) error {
	if st, ok := d.st.(*store.Store); ok {
		return st.Backup(destPath)
	}
	return errors.New("oodb: backup requires a local page store")
}

// SamePage reports whether two nodes' objects share a data page
// (clustering diagnostics for E11).
func (d *DB) SamePage(a, b hyper.NodeID) (bool, error) {
	ao, err := d.oidOf(a)
	if err != nil {
		return false, err
	}
	bo, err := d.oidOf(b)
	if err != nil {
		return false, err
	}
	return d.objs.SamePage(ao, bo)
}
