package oodb

import (
	"encoding/binary"
	"fmt"

	"hypermodel/internal/hyper"
)

// object is the decoded form of one persistent node object. Like a
// real OODB object it holds its attributes and its relationship
// collections directly; each entry carries both the target's OID (for
// physical traversal) and its uniqueId (the reference currency of the
// Backend interface), so a group lookup activates only one object.
type object struct {
	node      hyper.Node
	parentOID uint64
	parentID  hyper.NodeID
	children  []ref
	parts     []ref
	partOf    []ref
	refsTo    []edgeRef
	refsFrom  []edgeRef
	text      []byte
	form      []byte
}

// ref points at another object.
type ref struct {
	oid uint64
	id  hyper.NodeID
}

// edgeRef is one stored refTo/refFrom association endpoint.
type edgeRef struct {
	oid     uint64 // the other endpoint's OID
	id      hyper.NodeID
	offFrom int32
	offTo   int32
}

const objVersion = 1

func appendU16(b []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(b, v) }
func appendU32(b []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(b, v) }
func appendU64(b []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(b, v) }

// encodeObject serializes an object.
func encodeObject(o *object) []byte {
	size := 1 + 1 + 8 + 4*4 + 8 + 8 +
		2 + 16*len(o.children) +
		2 + 16*len(o.parts) +
		2 + 16*len(o.partOf) +
		2 + 24*len(o.refsTo) +
		2 + 24*len(o.refsFrom) +
		4 + len(o.text) +
		4 + len(o.form)
	b := make([]byte, 0, size)
	b = append(b, objVersion, byte(o.node.Kind))
	b = appendU64(b, uint64(o.node.ID))
	b = appendU32(b, uint32(o.node.Ten))
	b = appendU32(b, uint32(o.node.Hundred))
	b = appendU32(b, uint32(o.node.Thousand))
	b = appendU32(b, uint32(o.node.Million))
	b = appendU64(b, o.parentOID)
	b = appendU64(b, uint64(o.parentID))
	appendRefs := func(rs []ref) {
		b = appendU16(b, uint16(len(rs)))
		for _, r := range rs {
			b = appendU64(b, r.oid)
			b = appendU64(b, uint64(r.id))
		}
	}
	appendRefs(o.children)
	appendRefs(o.parts)
	appendRefs(o.partOf)
	appendEdges := func(es []edgeRef) {
		b = appendU16(b, uint16(len(es)))
		for _, e := range es {
			b = appendU64(b, e.oid)
			b = appendU64(b, uint64(e.id))
			b = appendU32(b, uint32(e.offFrom))
			b = appendU32(b, uint32(e.offTo))
		}
	}
	appendEdges(o.refsTo)
	appendEdges(o.refsFrom)
	b = appendU32(b, uint32(len(o.text)))
	b = append(b, o.text...)
	b = appendU32(b, uint32(len(o.form)))
	b = append(b, o.form...)
	return b
}

type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) need(n int) []byte {
	if r.err != nil {
		return nil
	}
	if r.off+n > len(r.b) {
		r.err = fmt.Errorf("oodb: truncated object (%d+%d > %d)", r.off, n, len(r.b))
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() byte {
	b := r.need(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) u16() uint16 {
	b := r.need(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.need(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.need(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// decodeObject parses encodeObject's format.
func decodeObject(data []byte) (*object, error) {
	r := &reader{b: data}
	if v := r.u8(); r.err == nil && v != objVersion {
		return nil, fmt.Errorf("oodb: unsupported object version %d", v)
	}
	o := &object{}
	o.node.Kind = hyper.Kind(r.u8())
	o.node.ID = hyper.NodeID(r.u64())
	o.node.Ten = int32(r.u32())
	o.node.Hundred = int32(r.u32())
	o.node.Thousand = int32(r.u32())
	o.node.Million = int32(r.u32())
	o.parentOID = r.u64()
	o.parentID = hyper.NodeID(r.u64())
	readRefs := func() []ref {
		n := int(r.u16())
		if r.err != nil || n == 0 {
			return nil
		}
		rs := make([]ref, n)
		for i := range rs {
			rs[i] = ref{r.u64(), hyper.NodeID(r.u64())}
		}
		return rs
	}
	o.children = readRefs()
	o.parts = readRefs()
	o.partOf = readRefs()
	readEdges := func() []edgeRef {
		n := int(r.u16())
		if r.err != nil || n == 0 {
			return nil
		}
		es := make([]edgeRef, n)
		for i := range es {
			es[i] = edgeRef{r.u64(), hyper.NodeID(r.u64()), int32(r.u32()), int32(r.u32())}
		}
		return es
	}
	o.refsTo = readEdges()
	o.refsFrom = readEdges()
	if n := int(r.u32()); r.err == nil && n > 0 {
		o.text = append([]byte(nil), r.need(n)...)
	}
	if n := int(r.u32()); r.err == nil && n > 0 {
		o.form = append([]byte(nil), r.need(n)...)
	}
	if r.err != nil {
		return nil, r.err
	}
	if r.off != len(data) {
		return nil, fmt.Errorf("oodb: %d trailing bytes in object", len(data)-r.off)
	}
	return o, nil
}
