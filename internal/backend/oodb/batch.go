package oodb

import (
	"hypermodel/internal/hyper"
	"hypermodel/internal/objstore"
)

var _ hyper.FrontierPrefetcher = (*DB)(nil)

// Batched reads (hyper.BatchReader): the object store's GetBatch visits
// a frontier's objects grouped by data page, so each page is fetched
// and decoded from the buffer pool once per batch — and over the page
// server, all of a frontier's missing pages arrive in one framed round
// trip instead of one per object.

// loadBatch activates every listed node's object, objs[i] for ids[i].
func (d *DB) loadBatch(ids []hyper.NodeID) ([]*object, error) {
	oids := make([]objstore.OID, len(ids))
	for i, id := range ids {
		oid, err := d.oidOf(id)
		if err != nil {
			return nil, &hyper.BatchError{Index: i, Err: err}
		}
		oids[i] = oid
	}
	datas, err := d.objs.GetBatch(oids)
	if err != nil {
		return nil, err
	}
	objs := make([]*object, len(ids))
	for i, data := range datas {
		o, err := decodeObject(data)
		if err != nil {
			return nil, &hyper.BatchError{Index: i, Err: err}
		}
		d.noteObject(oids[i], o)
		objs[i] = o
	}
	return objs, nil
}

// PrefetchFrontier (hyper.FrontierPrefetcher) starts warming the page
// cache with the listed nodes' objects, without blocking on the fetch.
// Over the page-server client the next BFS frontier's opGetPages round
// trip runs while the traversal computes on the current level. The
// kick is advisory: nodes whose OIDs cannot be resolved are skipped,
// and the returned wait function's error may be ignored — the
// synchronous batch read that follows re-fetches and surfaces any real
// failure.
func (d *DB) PrefetchFrontier(ids []hyper.NodeID) (wait func() error) {
	oids := make([]objstore.OID, 0, len(ids))
	for _, id := range ids {
		if oid, err := d.oidOf(id); err == nil {
			oids = append(oids, oid)
		}
	}
	return d.objs.PrefetchOIDs(oids)
}

// NodesBatch returns the attributes of each listed node.
func (d *DB) NodesBatch(ids []hyper.NodeID) ([]hyper.Node, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	objs, err := d.loadBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([]hyper.Node, len(ids))
	for i, o := range objs {
		out[i] = o.node
	}
	return out, nil
}

// HundredBatch returns the hundred attribute of each listed node.
func (d *DB) HundredBatch(ids []hyper.NodeID) ([]int32, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	objs, err := d.loadBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(ids))
	for i, o := range objs {
		out[i] = o.node.Hundred
	}
	return out, nil
}

// ChildrenBatch returns each node's ordered children.
func (d *DB) ChildrenBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	objs, err := d.loadBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([][]hyper.NodeID, len(ids))
	for i, o := range objs {
		kids := make([]hyper.NodeID, len(o.children))
		for j, r := range o.children {
			kids[j] = r.id
		}
		out[i] = kids
	}
	return out, nil
}

// PartsBatch returns each node's M-N parts.
func (d *DB) PartsBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	objs, err := d.loadBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([][]hyper.NodeID, len(ids))
	for i, o := range objs {
		parts := make([]hyper.NodeID, len(o.parts))
		for j, r := range o.parts {
			parts[j] = r.id
		}
		out[i] = parts
	}
	return out, nil
}

// RefsToBatch returns each node's outgoing association edges.
func (d *DB) RefsToBatch(ids []hyper.NodeID) ([][]hyper.Edge, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	objs, err := d.loadBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([][]hyper.Edge, len(ids))
	for i, o := range objs {
		edges := make([]hyper.Edge, len(o.refsTo))
		for j, e := range o.refsTo {
			edges[j] = hyper.Edge{From: ids[i], To: e.id, OffsetFrom: e.offFrom, OffsetTo: e.offTo}
		}
		out[i] = edges
	}
	return out, nil
}
