package oodb

import (
	"bytes"
	"testing"

	"hypermodel/internal/hyper"
)

// FuzzDecodeObject feeds arbitrary bytes to the object decoder: it
// must reject or accept without panicking, and anything it accepts
// must re-encode to the same bytes (canonical encoding).
func FuzzDecodeObject(f *testing.F) {
	f.Add([]byte{})
	f.Add(encodeObject(&object{node: hyper.Node{ID: 1}}))
	f.Add(encodeObject(&object{
		node:     hyper.Node{ID: 7, Kind: hyper.KindText, Hundred: 50},
		children: []ref{{1, 2}},
		refsTo:   []edgeRef{{3, 4, 5, 6}},
		text:     []byte("version1"),
	}))
	f.Fuzz(func(t *testing.T, data []byte) {
		o, err := decodeObject(data)
		if err != nil {
			return
		}
		re := encodeObject(o)
		if !bytes.Equal(re, data) {
			t.Fatalf("accepted object is not canonical: %x -> %x", data, re)
		}
	})
}
