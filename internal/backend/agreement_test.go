// Package backend_test cross-checks the three mappings: the same seed
// must produce logically identical databases, and every operation must
// return identical results on all of them. This is what makes the E12
// backend comparison meaningful — the backends do the same logical
// work, differing only in physical organization.
package backend_test

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"testing"

	"hypermodel/internal/backend/memdb"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/backend/reldb"
	"hypermodel/internal/hyper"
)

func buildAll(t *testing.T, level int, seed int64) (map[string]hyper.Backend, hyper.Layout) {
	t.Helper()
	dir := t.TempDir()
	backends := map[string]hyper.Backend{}

	odb, err := oodb.Open(filepath.Join(dir, "o.db"), oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	backends["oodb"] = odb
	rdb, err := reldb.Open(filepath.Join(dir, "r.db"), reldb.Options{})
	if err != nil {
		t.Fatal(err)
	}
	backends["reldb"] = rdb
	mdb, err := memdb.Open("")
	if err != nil {
		t.Fatal(err)
	}
	backends["memdb"] = mdb

	var lay hyper.Layout
	for name, b := range backends {
		l, _, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: level, Seed: seed})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		lay = l
		if err := b.Commit(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		t.Cleanup(func() { b.Close() })
	}
	return backends, lay
}

// agree runs fn on every backend and requires identical results.
func agree[T any](t *testing.T, backends map[string]hyper.Backend, what string, fn func(hyper.Backend) (T, error)) T {
	t.Helper()
	var ref T
	var refName string
	for name, b := range backends {
		got, err := fn(b)
		if err != nil {
			t.Fatalf("%s on %s: %v", what, name, err)
		}
		if refName == "" {
			ref, refName = got, name
			continue
		}
		if !reflect.DeepEqual(got, ref) {
			t.Fatalf("%s: %s and %s disagree:\n%v\nvs\n%v", what, refName, name, ref, got)
		}
	}
	return ref
}

func TestBackendsAgreeOnEveryOperation(t *testing.T) {
	backends, lay := buildAll(t, 3, 77)
	rng := rand.New(rand.NewSource(5))

	for round := 0; round < 10; round++ {
		id := lay.RandomNode(rng)
		agree(t, backends, "O1 nameLookup", func(b hyper.Backend) (int32, error) {
			return hyper.NameLookup(b, id)
		})
		// O3/O4 return sets; backends enumerate them in their index's
		// natural order, so compare order-insensitively.
		x := int32(rng.Intn(91))
		agree(t, backends, "O3 rangeLookupHundred", func(b hyper.Backend) (map[hyper.NodeID]int, error) {
			ids, err := hyper.RangeLookupHundred(b, x)
			return multiset(ids), err
		})
		y := int32(rng.Intn(990001))
		agree(t, backends, "O4 rangeLookupMillion", func(b hyper.Backend) (map[hyper.NodeID]int, error) {
			ids, err := hyper.RangeLookupMillion(b, y)
			return multiset(ids), err
		})
		internal := lay.RandomInternal(rng)
		agree(t, backends, "O5A groupLookup1N", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.GroupLookup1N(b, internal)
		})
		agree(t, backends, "O5B groupLookupMN", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.GroupLookupMN(b, internal)
		})
		agree(t, backends, "O6 groupLookupMNAtt", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.GroupLookupMNAtt(b, id)
		})
		nonRoot := lay.RandomNonRoot(rng)
		agree(t, backends, "O7A refLookup1N", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.RefLookup1N(b, nonRoot)
		})
		agree(t, backends, "O8 refLookupMNAtt", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.RefLookupMNAtt(b, id)
		})

		start := lay.RandomClosureStart(rng)
		agree(t, backends, "O10 closure1N", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.Closure1N(b, start)
		})
		agree(t, backends, "O11 closure1NAttSum", func(b hyper.Backend) (int64, error) {
			sum, _, err := hyper.Closure1NAttSum(b, start)
			return sum, err
		})
		px := int32(rng.Intn(990001))
		agree(t, backends, "O13 closure1NPred", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.Closure1NPred(b, start, px)
		})
		agree(t, backends, "O15 closureMNAtt", func(b hyper.Backend) ([]hyper.NodeID, error) {
			return hyper.ClosureMNAtt(b, start, 25)
		})
		agree(t, backends, "O18 closureMNAttLinkSum", func(b hyper.Backend) ([]hyper.NodeDist, error) {
			return hyper.ClosureMNAttLinkSum(b, start, 25)
		})
	}

	// O7B / O14 may return M-N results in backend-specific order;
	// compare as sets.
	for round := 0; round < 10; round++ {
		nonRoot := lay.RandomNonRoot(rng)
		agree(t, backends, "O7B refLookupMN (set)", func(b hyper.Backend) (map[hyper.NodeID]int, error) {
			ids, err := hyper.RefLookupMN(b, nonRoot)
			return multiset(ids), err
		})
		start := lay.RandomClosureStart(rng)
		agree(t, backends, "O14 closureMN (set)", func(b hyper.Backend) (map[hyper.NodeID]int, error) {
			ids, err := hyper.ClosureMN(b, start)
			return multiset(ids), err
		})
	}

	// Text contents agree word for word.
	tid := lay.RandomTextNode(rng)
	agree(t, backends, "text content", func(b hyper.Backend) (string, error) {
		return b.Text(tid)
	})
	// Bitmap dimensions agree.
	fid, _ := lay.RandomFormNode(rng)
	type dims struct{ W, H int }
	agree(t, backends, "form dimensions", func(b hyper.Backend) (dims, error) {
		bm, err := b.Form(fid)
		return dims{bm.W, bm.H}, err
	})
}

// TestBackendsAgreeAfterUpdates mutates all three backends identically
// and re-checks agreement — catches index-maintenance divergence.
func TestBackendsAgreeAfterUpdates(t *testing.T) {
	backends, lay := buildAll(t, 3, 78)
	rng := rand.New(rand.NewSource(6))
	start := lay.RandomClosureStart(rng)
	for name, b := range backends {
		if _, err := hyper.Closure1NAttSet(b, start); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		tid := lay.RandomTextNode(rand.New(rand.NewSource(9)))
		if err := hyper.TextNodeEdit(b, tid, true); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if err := b.Commit(); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
	}
	for round := 0; round < 10; round++ {
		x := int32(rng.Intn(91))
		agree(t, backends, "range after update", func(b hyper.Backend) (map[hyper.NodeID]int, error) {
			ids, err := hyper.RangeLookupHundred(b, x)
			return multiset(ids), err
		})
		agree(t, backends, "sum after update", func(b hyper.Backend) (int64, error) {
			sum, _, err := hyper.Closure1NAttSum(b, start)
			return sum, err
		})
	}
}

func multiset(ids []hyper.NodeID) map[hyper.NodeID]int {
	m := map[hyper.NodeID]int{}
	for _, id := range ids {
		m[id]++
	}
	return m
}
