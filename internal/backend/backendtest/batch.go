package backendtest

import (
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"hypermodel/internal/hyper"
)

// noBatch hides a backend's native BatchReader implementation, so the
// suite can exercise the generic per-item fallback on every backend.
// Embedding the interface promotes only the Backend methods: the
// wrapper never satisfies hyper.BatchReader, whatever it wraps.
type noBatch struct{ hyper.Backend }

// testBatchReads checks the BatchReader contract on both dispatch
// paths: a batch equals N single calls item-for-item (children keep
// their order, duplicates are allowed), an empty batch is a no-op, and
// a partial miss fails the whole batch with a *hyper.BatchError whose
// Index names the offending item and which unwraps to ErrNotFound.
func testBatchReads(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()

	rng := rand.New(rand.NewSource(7))
	ids := []hyper.NodeID{lay.FirstID()}
	for i := 0; i < 25; i++ {
		ids = append(ids, lay.RandomNode(rng))
	}
	ids = append(ids, ids[1]) // a duplicate must be served twice
	missing := lay.LastID() + 1000

	paths := []struct {
		name string
		b    hyper.Backend
	}{
		{"dispatch", b}, // native implementation when the backend has one
		{"fallback", noBatch{b}},
	}
	for _, p := range paths {
		p := p
		t.Run(p.name, func(t *testing.T) {
			checkBatch(t, "NodesBatch", ids, missing,
				func(in []hyper.NodeID) ([]hyper.Node, error) { return hyper.NodesBatch(p.b, in) },
				b.Node)
			checkBatch(t, "HundredBatch", ids, missing,
				func(in []hyper.NodeID) ([]int32, error) { return hyper.HundredBatch(p.b, in) },
				b.Hundred)
			checkBatch(t, "ChildrenBatch", ids, missing,
				func(in []hyper.NodeID) ([][]hyper.NodeID, error) { return hyper.ChildrenBatch(p.b, in) },
				b.Children)
			checkBatch(t, "PartsBatch", ids, missing,
				func(in []hyper.NodeID) ([][]hyper.NodeID, error) { return hyper.PartsBatch(p.b, in) },
				b.Parts)
			checkBatch(t, "RefsToBatch", ids, missing,
				func(in []hyper.NodeID) ([][]hyper.Edge, error) { return hyper.RefsToBatch(p.b, in) },
				b.RefsTo)
		})
	}

	// The frontier-batched closure operations must agree across the two
	// dispatch paths (native batching vs per-item fallback).
	wantClosure, err := hyper.Closure1N(noBatch{b}, lay.FirstID())
	if err != nil {
		t.Fatalf("Closure1N over fallback: %v", err)
	}
	gotClosure, err := hyper.Closure1N(b, lay.FirstID())
	if err != nil {
		t.Fatalf("Closure1N over dispatch: %v", err)
	}
	if !reflect.DeepEqual(gotClosure, wantClosure) {
		t.Fatalf("Closure1N differs between native batching and fallback")
	}
}

// checkBatch verifies one batch helper against its single-item method.
func checkBatch[T any](t *testing.T, name string, ids []hyper.NodeID, missing hyper.NodeID,
	batch func([]hyper.NodeID) ([]T, error), single func(hyper.NodeID) (T, error)) {
	t.Helper()

	got, err := batch(ids)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	if len(got) != len(ids) {
		t.Fatalf("%s returned %d items for %d ids", name, len(got), len(ids))
	}
	for i, id := range ids {
		want, err := single(id)
		if err != nil {
			t.Fatalf("%s: single call for node %d: %v", name, id, err)
		}
		if !reflect.DeepEqual(got[i], want) {
			t.Fatalf("%s[%d] (node %d) = %v, want %v", name, i, id, got[i], want)
		}
	}

	if out, err := batch(nil); err != nil || out != nil {
		t.Fatalf("%s(empty) = %v, %v; want nil, nil", name, out, err)
	}

	_, err = batch([]hyper.NodeID{ids[0], missing, ids[1]})
	if err == nil {
		t.Fatalf("%s with missing node succeeded", name)
	}
	if !errors.Is(err, hyper.ErrNotFound) {
		t.Fatalf("%s miss error = %v, want ErrNotFound", name, err)
	}
	var be *hyper.BatchError
	if !errors.As(err, &be) {
		t.Fatalf("%s miss error %v is not a *hyper.BatchError", name, err)
	}
	if be.Index != 1 {
		t.Fatalf("%s miss index = %d, want 1", name, be.Index)
	}
}
