package backendtest

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"hypermodel/internal/hyper"
)

// testConcurrentReads runs a mixed O1–O9 read workload from several
// goroutines against one shared backend and requires every answer to
// match the single-threaded ground truth. This is the conformance face
// of the single-writer/multi-reader engine: with no writer active,
// any number of readers must see the committed database, bit for bit.
func testConcurrentReads(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()

	// Each op is a read-only closure whose result is rendered to a
	// string so the parallel phase can compare against ground truth
	// without caring about the result type.
	type op struct {
		name string
		run  func() (string, error)
	}
	var ops []op
	add := func(name string, run func() (string, error)) {
		ops = append(ops, op{name, run})
	}

	rng := rand.New(rand.NewSource(14))
	for i := 0; i < 5; i++ {
		id := lay.RandomNode(rng)
		add(fmt.Sprintf("O1 nameLookup(%d)", id), func() (string, error) {
			h, err := hyper.NameLookup(b, id)
			return fmt.Sprint(h), err
		})
	}
	if oid, err := b.OIDOf(lay.RandomNode(rng)); err == nil {
		add(fmt.Sprintf("O2 nameOIDLookup(%d)", oid), func() (string, error) {
			h, err := hyper.NameOIDLookup(b, oid)
			return fmt.Sprint(h), err
		})
	} else if !errors.Is(err, hyper.ErrNoOIDs) {
		t.Fatal(err)
	}
	x := int32(rng.Intn(hyper.HundredRange - hyper.HundredWindow + 1))
	add(fmt.Sprintf("O3 rangeLookupHundred(%d)", x), func() (string, error) {
		ids, err := hyper.RangeLookupHundred(b, x)
		return fmt.Sprint(ids), err
	})
	y := int32(rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
	add(fmt.Sprintf("O4 rangeLookupMillion(%d)", y), func() (string, error) {
		ids, err := hyper.RangeLookupMillion(b, y)
		return fmt.Sprint(ids), err
	})
	for i := 0; i < 3; i++ {
		id := lay.RandomInternal(rng)
		add(fmt.Sprintf("O5A groupLookup1N(%d)", id), func() (string, error) {
			ids, err := hyper.GroupLookup1N(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O5B groupLookupMN(%d)", id), func() (string, error) {
			ids, err := hyper.GroupLookupMN(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O6 groupLookupMNAtt(%d)", id), func() (string, error) {
			refs, err := hyper.GroupLookupMNAtt(b, id)
			return fmt.Sprint(refs), err
		})
	}
	for i := 0; i < 3; i++ {
		id := lay.RandomNonRoot(rng)
		add(fmt.Sprintf("O7A refLookup1N(%d)", id), func() (string, error) {
			ids, err := hyper.RefLookup1N(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O7B refLookupMN(%d)", id), func() (string, error) {
			ids, err := hyper.RefLookupMN(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O8 refLookupMNAtt(%d)", id), func() (string, error) {
			refs, err := hyper.RefLookupMNAtt(b, id)
			return fmt.Sprint(refs), err
		})
	}
	add("O9 seqScan", func() (string, error) {
		n, err := hyper.SeqScan(b, 1, hyper.NodeID(lay.Total()))
		return fmt.Sprint(n), err
	})

	// Single-threaded ground truth.
	want := make([]string, len(ops))
	for i, o := range ops {
		got, err := o.run()
		if err != nil {
			t.Fatalf("serial %s: %v", o.name, err)
		}
		want[i] = got
	}

	const (
		goroutines = 8
		rounds     = 3
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				// Rotate the deck per goroutine so different operations
				// overlap in time.
				for i := range ops {
					o := ops[(i+g)%len(ops)]
					got, err := o.run()
					if err != nil {
						t.Errorf("goroutine %d: %s: %v", g, o.name, err)
						return
					}
					if got != want[(i+g)%len(ops)] {
						t.Errorf("goroutine %d: %s = %s, want %s", g, o.name, got, want[(i+g)%len(ops)])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
