// Package backendtest is a conformance suite run against every
// hyper.Backend implementation (memdb, oodb, reldb, remote). It checks
// the §5.2 generator invariants — the structural content of the
// paper's Figures 2, 3 and 4 — and the semantics of all twenty
// operations, so that the benchmark compares identical logical work
// across backends.
package backendtest

import (
	"errors"
	"math/rand"
	"strings"
	"testing"

	"hypermodel/internal/hyper"
)

// Config describes how to construct the backend under test.
type Config struct {
	// Open returns a fresh, empty backend.
	Open func(t *testing.T) hyper.Backend
	// Reopen closes the given backend and reopens the same database,
	// or returns nil if the backend has no persistence to test.
	Reopen func(t *testing.T, b hyper.Backend) hyper.Backend
	// LeafLevel for the generated test database; 3 (156 nodes, one
	// FormNode) if zero.
	LeafLevel int
}

const seed = 42

func (c Config) leafLevel() int {
	if c.LeafLevel == 0 {
		return 3
	}
	return c.LeafLevel
}

func (c Config) generate(t *testing.T) (hyper.Backend, hyper.Layout) {
	t.Helper()
	b := c.Open(t)
	lay, _, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: c.leafLevel(), Seed: seed})
	if err != nil {
		t.Fatalf("generate: %v", err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("commit: %v", err)
	}
	return b, lay
}

// Run executes the full conformance suite.
func Run(t *testing.T, cfg Config) {
	t.Run("GeneratorInvariants", func(t *testing.T) { testGeneratorInvariants(t, cfg) })
	t.Run("NameLookup", func(t *testing.T) { testNameLookup(t, cfg) })
	t.Run("RangeLookup", func(t *testing.T) { testRangeLookup(t, cfg) })
	t.Run("GroupAndRefLookup", func(t *testing.T) { testGroupRef(t, cfg) })
	t.Run("BatchReads", func(t *testing.T) { testBatchReads(t, cfg) })
	t.Run("SeqScan", func(t *testing.T) { testSeqScan(t, cfg) })
	t.Run("Closure1N", func(t *testing.T) { testClosure1N(t, cfg) })
	t.Run("ClosureAttOps", func(t *testing.T) { testClosureAttOps(t, cfg) })
	t.Run("ClosureMN", func(t *testing.T) { testClosureMN(t, cfg) })
	t.Run("ClosureMNAtt", func(t *testing.T) { testClosureMNAtt(t, cfg) })
	t.Run("Editing", func(t *testing.T) { testEditing(t, cfg) })
	t.Run("Blobs", func(t *testing.T) { testBlobs(t, cfg) })
	t.Run("ColdCorrectness", func(t *testing.T) { testColdCorrectness(t, cfg) })
	t.Run("Persistence", func(t *testing.T) { testPersistence(t, cfg) })
	t.Run("Errors", func(t *testing.T) { testErrors(t, cfg) })
	t.Run("SchemaModification", func(t *testing.T) { testSchemaModification(t, cfg) })
	t.Run("TwoStructures", func(t *testing.T) { testTwoStructures(t, cfg) })
	t.Run("ConcurrentReads", func(t *testing.T) { testConcurrentReads(t, cfg) })
}

// testTwoStructures exercises §6.4.1's requirement: the database may
// hold a second copy of the test structure, and operations on one must
// not touch or report nodes of the other.
func testTwoStructures(t *testing.T, cfg Config) {
	b := cfg.Open(t)
	defer b.Close()
	layA, _, err := hyper.Generate(b, hyper.GenConfig{LeafLevel: 2, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	layB, _, err := hyper.Generate(b, hyper.GenConfig{
		LeafLevel: 2, Seed: 2, BaseID: layA.LastID() + 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if layB.FirstID() != layA.LastID()+1 {
		t.Fatalf("structure B starts at %d", layB.FirstID())
	}

	// Both structures are complete and independent.
	for _, lay := range []hyper.Layout{layA, layB} {
		nodes, err := hyper.Closure1N(b, lay.FirstID())
		if err != nil {
			t.Fatal(err)
		}
		if len(nodes) != lay.Total() {
			t.Fatalf("closure from %d found %d nodes, want %d", lay.FirstID(), len(nodes), lay.Total())
		}
		for _, id := range nodes {
			if id < lay.FirstID() || id > lay.LastID() {
				t.Fatalf("closure of one structure reached foreign node %d", id)
			}
		}
	}
	// The bounded sequential scan (O9) honours structure boundaries —
	// the reason the paper forbids using the class extension.
	count, err := hyper.SeqScan(b, layA.FirstID(), layA.LastID())
	if err != nil {
		t.Fatal(err)
	}
	if count != layA.Total() {
		t.Fatalf("bounded scan visited %d nodes, want %d", count, layA.Total())
	}
	// Edges stay inside their structure.
	rng := rand.New(rand.NewSource(13))
	for i := 0; i < 20; i++ {
		id := layB.RandomNode(rng)
		refs, err := b.RefsTo(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range refs {
			if e.To < layB.FirstID() || e.To > layB.LastID() {
				t.Fatalf("structure B edge points into structure A: %+v", e)
			}
		}
	}
}

func testGeneratorInvariants(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	total := lay.Total()

	// Figure 2 — the 1-N tree: every internal node has exactly five
	// ordered children whose parent pointers return to it.
	childEdges := 0
	for lvl := 0; lvl < lay.LeafLevel; lvl++ {
		first, last := hyper.LevelIDs(lvl)
		for id := first; id <= last; id++ {
			kids, err := b.Children(id)
			if err != nil {
				t.Fatalf("children(%d): %v", id, err)
			}
			if len(kids) != hyper.FanOut {
				t.Fatalf("node %d has %d children", id, len(kids))
			}
			childEdges += len(kids)
			for _, k := range kids {
				if lay.LevelOf(k) != lvl+1 {
					t.Fatalf("child %d of %d is on level %d, want %d", k, id, lay.LevelOf(k), lvl+1)
				}
				p, ok, err := b.Parent(k)
				if err != nil || !ok || p != id {
					t.Fatalf("parent(%d) = %d %v %v, want %d", k, p, ok, err, id)
				}
			}
		}
	}
	if childEdges != total-1 {
		t.Fatalf("1-N relationships = %d, want %d (one less than the nodes)", childEdges, total-1)
	}
	if _, ok, err := b.Parent(1); err != nil || ok {
		t.Fatalf("root has a parent (%v)", err)
	}

	// Figure 3 — the M-N aggregation: five parts per non-leaf node,
	// all from the next level, with consistent inverses.
	partEdges := 0
	for lvl := 0; lvl < lay.LeafLevel; lvl++ {
		first, last := hyper.LevelIDs(lvl)
		for id := first; id <= last; id++ {
			parts, err := b.Parts(id)
			if err != nil {
				t.Fatalf("parts(%d): %v", id, err)
			}
			if len(parts) != hyper.FanOut {
				t.Fatalf("node %d has %d parts", id, len(parts))
			}
			partEdges += len(parts)
			for _, p := range parts {
				if lay.LevelOf(p) != lvl+1 {
					t.Fatalf("part %d of %d on level %d, want %d", p, id, lay.LevelOf(p), lvl+1)
				}
				wholes, err := b.PartOf(p)
				if err != nil {
					t.Fatalf("partOf(%d): %v", p, err)
				}
				found := 0
				for _, w := range wholes {
					if w == id {
						found++
					}
				}
				if found == 0 {
					t.Fatalf("partOf(%d) misses whole %d", p, id)
				}
			}
		}
	}
	if partEdges != total-1 {
		t.Fatalf("M-N relationships = %d, want %d", partEdges, total-1)
	}
	// Leaves have no parts or children.
	leafFirst, _ := hyper.LevelIDs(lay.LeafLevel)
	if kids, err := b.Children(leafFirst); err != nil || len(kids) != 0 {
		t.Fatalf("leaf has children: %v %v", kids, err)
	}
	if parts, err := b.Parts(leafFirst); err != nil || len(parts) != 0 {
		t.Fatalf("leaf has parts: %v %v", parts, err)
	}

	// Figure 4 — the M-N association with attributes: exactly one
	// outgoing edge per node, offsets in [0,10), inverses consistent,
	// total edges = total nodes.
	refEdges := 0
	for id := hyper.NodeID(1); id <= hyper.NodeID(total); id++ {
		edges, err := b.RefsTo(id)
		if err != nil {
			t.Fatalf("refsTo(%d): %v", id, err)
		}
		if len(edges) != 1 {
			t.Fatalf("node %d has %d outgoing refs", id, len(edges))
		}
		refEdges += len(edges)
		e := edges[0]
		if e.From != id || e.To < 1 || e.To > hyper.NodeID(total) {
			t.Fatalf("bad edge %+v", e)
		}
		if e.OffsetFrom < 0 || e.OffsetFrom > 9 || e.OffsetTo < 0 || e.OffsetTo > 9 {
			t.Fatalf("edge offsets out of range: %+v", e)
		}
		back, err := b.RefsFrom(e.To)
		if err != nil {
			t.Fatalf("refsFrom(%d): %v", e.To, err)
		}
		found := false
		for _, be := range back {
			if be.From == id && be.OffsetFrom == e.OffsetFrom && be.OffsetTo == e.OffsetTo {
				found = true
			}
		}
		if !found {
			t.Fatalf("refsFrom(%d) misses edge from %d", e.To, id)
		}
	}
	if refEdges != total {
		t.Fatalf("M-N attribute relationships = %d, want %d (equal to the nodes)", refEdges, total)
	}

	// Attribute intervals and node kinds.
	forms, texts := 0, 0
	for id := hyper.NodeID(1); id <= hyper.NodeID(total); id++ {
		n, err := b.Node(id)
		if err != nil {
			t.Fatalf("node(%d): %v", id, err)
		}
		if n.ID != id {
			t.Fatalf("node %d reports ID %d", id, n.ID)
		}
		if n.Ten < 0 || n.Ten >= 10 || n.Hundred < 0 || n.Hundred >= 100 ||
			n.Thousand < 0 || n.Thousand >= 1000 || n.Million < 0 || n.Million >= 1000000 {
			t.Fatalf("node %d attributes out of range: %+v", id, n)
		}
		isLeaf := lay.LevelOf(id) == lay.LeafLevel
		switch n.Kind {
		case hyper.KindInternal:
			if isLeaf {
				t.Fatalf("leaf %d is KindInternal", id)
			}
		case hyper.KindText:
			texts++
			if !isLeaf {
				t.Fatalf("internal %d is KindText", id)
			}
		case hyper.KindForm:
			forms++
			if !isLeaf {
				t.Fatalf("internal %d is KindForm", id)
			}
		}
	}
	leaves := hyper.NodesAtLevel(lay.LeafLevel)
	wantForms := leaves / hyper.TextPerForm
	if forms != wantForms || texts != leaves-wantForms {
		t.Fatalf("forms=%d texts=%d, want %d and %d", forms, texts, wantForms, leaves-wantForms)
	}

	// Text content: version1 first, middle, last; word shape.
	rng := rand.New(rand.NewSource(7))
	id := lay.RandomTextNode(rng)
	text, err := b.Text(id)
	if err != nil {
		t.Fatalf("text(%d): %v", id, err)
	}
	words := strings.Split(text, " ")
	if len(words) < hyper.TextMinWords || len(words) > hyper.TextMaxWords {
		t.Fatalf("text node has %d words", len(words))
	}
	if words[0] != hyper.VersionWord || words[len(words)/2] != hyper.VersionWord || words[len(words)-1] != hyper.VersionWord {
		t.Fatalf("version1 markers missing: %q ... %q", words[0], words[len(words)-1])
	}

	// Form content: all white, side lengths in range.
	fid, ok := lay.RandomFormNode(rng)
	if !ok {
		t.Fatal("no form node in a level-3 database")
	}
	bm, err := b.Form(fid)
	if err != nil {
		t.Fatalf("form(%d): %v", fid, err)
	}
	if bm.W < hyper.BitmapMinSide || bm.W > hyper.BitmapMaxSide || bm.H < hyper.BitmapMinSide || bm.H > hyper.BitmapMaxSide {
		t.Fatalf("bitmap %d×%d out of range", bm.W, bm.H)
	}
	if black := bm.CountBlack(); black != 0 {
		t.Fatalf("fresh bitmap has %d black pixels", black)
	}
}

func testNameLookup(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 25; i++ {
		id := lay.RandomNode(rng)
		n, err := b.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		h, err := hyper.NameLookup(b, id)
		if err != nil || h != n.Hundred {
			t.Fatalf("O1 nameLookup(%d) = %d %v, want %d", id, h, err, n.Hundred)
		}
		oid, err := b.OIDOf(id)
		if errors.Is(err, hyper.ErrNoOIDs) {
			continue // O2 not applicable for this backend
		}
		if err != nil {
			t.Fatal(err)
		}
		h2, err := hyper.NameOIDLookup(b, oid)
		if err != nil || h2 != n.Hundred {
			t.Fatalf("O2 nameOIDLookup(%d) = %d %v, want %d", oid, h2, err, n.Hundred)
		}
	}
}

func testRangeLookup(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	total := hyper.NodeID(lay.Total())

	brute := func(attr func(hyper.Node) int32, lo, hi int32) map[hyper.NodeID]bool {
		out := map[hyper.NodeID]bool{}
		for id := hyper.NodeID(1); id <= total; id++ {
			n, err := b.Node(id)
			if err != nil {
				t.Fatal(err)
			}
			if v := attr(n); v >= lo && v <= hi {
				out[id] = true
			}
		}
		return out
	}
	check := func(name string, got []hyper.NodeID, want map[hyper.NodeID]bool) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("%s returned %d nodes, want %d", name, len(got), len(want))
		}
		seen := map[hyper.NodeID]bool{}
		for _, id := range got {
			if seen[id] {
				t.Fatalf("%s returned duplicate %d", name, id)
			}
			seen[id] = true
			if !want[id] {
				t.Fatalf("%s returned wrong node %d", name, id)
			}
		}
	}

	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 5; i++ {
		x := int32(rng.Intn(hyper.HundredRange - hyper.HundredWindow + 1))
		got, err := hyper.RangeLookupHundred(b, x)
		if err != nil {
			t.Fatal(err)
		}
		check("O3 rangeLookupHundred", got, brute(func(n hyper.Node) int32 { return n.Hundred }, x, x+9))

		y := int32(rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
		gotM, err := hyper.RangeLookupMillion(b, y)
		if err != nil {
			t.Fatal(err)
		}
		check("O4 rangeLookupMillion", gotM, brute(func(n hyper.Node) int32 { return n.Million }, y, y+9999))
	}
}

func testGroupRef(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		id := lay.RandomInternal(rng)
		kids, err := hyper.GroupLookup1N(b, id)
		if err != nil || len(kids) != hyper.FanOut {
			t.Fatalf("O5A groupLookup1N(%d) = %v %v", id, kids, err)
		}
		// Order: the generator appends children left to right, so the
		// IDs must be consecutive ascending (level-major numbering).
		for j := 1; j < len(kids); j++ {
			if kids[j] != kids[j-1]+1 {
				t.Fatalf("children of %d not in insertion order: %v", id, kids)
			}
		}
		parts, err := hyper.GroupLookupMN(b, id)
		if err != nil || len(parts) != hyper.FanOut {
			t.Fatalf("O5B groupLookupMN(%d) = %v %v", id, parts, err)
		}
		refs, err := hyper.GroupLookupMNAtt(b, id)
		if err != nil || len(refs) != 1 {
			t.Fatalf("O6 groupLookupMNAtt(%d) = %v %v", id, refs, err)
		}

		nr := lay.RandomNonRoot(rng)
		parent, err := hyper.RefLookup1N(b, nr)
		if err != nil || len(parent) != 1 {
			t.Fatalf("O7A refLookup1N(%d) = %v %v", nr, parent, err)
		}
		back, err := b.Children(parent[0])
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, c := range back {
			if c == nr {
				found = true
			}
		}
		if !found {
			t.Fatalf("parent %d does not list %d as child", parent[0], nr)
		}
		wholes, err := hyper.RefLookupMN(b, nr)
		if err != nil {
			t.Fatalf("O7B refLookupMN(%d): %v", nr, err)
		}
		for _, w := range wholes {
			ps, err := b.Parts(w)
			if err != nil {
				t.Fatal(err)
			}
			ok := false
			for _, p := range ps {
				if p == nr {
					ok = true
				}
			}
			if !ok {
				t.Fatalf("whole %d does not list part %d", w, nr)
			}
		}
		if _, err := hyper.RefLookupMNAtt(b, lay.RandomNode(rng)); err != nil {
			t.Fatalf("O8 refLookupMNAtt: %v", err)
		}
	}
}

func testSeqScan(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	count, err := hyper.SeqScan(b, 1, hyper.NodeID(lay.Total()))
	if err != nil {
		t.Fatal(err)
	}
	if count != lay.Total() {
		t.Fatalf("O9 seqScan visited %d nodes, want %d", count, lay.Total())
	}
	// The scan must honour the range bounds — the paper requires not
	// touching node objects outside the test structure.
	count, err = hyper.SeqScan(b, 2, 31)
	if err != nil || count != 30 {
		t.Fatalf("bounded scan visited %d (%v), want 30", count, err)
	}
}

func testClosure1N(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(4))
	start := lay.RandomClosureStart(rng)
	got, err := hyper.Closure1N(b, start)
	if err != nil {
		t.Fatal(err)
	}
	want := hyper.ClosureSize(lay.ClosureStartLevel(), lay.LeafLevel)
	if len(got) != want {
		t.Fatalf("O10 closure1N returned %d nodes, want %d", len(got), want)
	}
	if got[0] != start {
		t.Fatalf("pre-order list does not start with the start node")
	}
	// Pre-order: each node appears after its parent; verify by
	// reconstructing positions.
	pos := map[hyper.NodeID]int{}
	for i, id := range got {
		pos[id] = i
	}
	for _, id := range got[1:] {
		p, ok, err := b.Parent(id)
		if err != nil || !ok {
			t.Fatal(err)
		}
		pp, exists := pos[p]
		if !exists || pp >= pos[id] {
			t.Fatalf("node %d appears before its parent %d", id, p)
		}
	}
	// The result list is storable in the database (§6.5).
	if err := hyper.SaveNodeList(b, "toc", got); err != nil {
		t.Fatal(err)
	}
	back, err := hyper.LoadNodeList(b, "toc")
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(got) {
		t.Fatalf("stored list round-trip lost nodes: %d != %d", len(back), len(got))
	}
	for i := range got {
		if back[i] != got[i] {
			t.Fatalf("stored list differs at %d", i)
		}
	}
}

func testClosureAttOps(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(5))
	start := lay.RandomClosureStart(rng)

	nodes, err := hyper.Closure1N(b, start)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, id := range nodes {
		h, err := b.Hundred(id)
		if err != nil {
			t.Fatal(err)
		}
		want += int64(h)
	}
	sum, visited, err := hyper.Closure1NAttSum(b, start)
	if err != nil || visited != len(nodes) || sum != want {
		t.Fatalf("O11 closure1NAttSum = %d over %d nodes (%v), want %d over %d", sum, visited, err, want, len(nodes))
	}

	// O12 twice restores the attribute (paper's own check).
	updated, err := hyper.Closure1NAttSet(b, start)
	if err != nil || updated != len(nodes) {
		t.Fatalf("O12 first run updated %d (%v)", updated, err)
	}
	sumAfter, _, err := hyper.Closure1NAttSum(b, start)
	if err != nil {
		t.Fatal(err)
	}
	if wantAfter := int64(99*len(nodes)) - want; sumAfter != wantAfter {
		t.Fatalf("after O12, sum = %d, want %d", sumAfter, wantAfter)
	}
	if _, err := hyper.Closure1NAttSet(b, start); err != nil {
		t.Fatal(err)
	}
	sumRestored, _, err := hyper.Closure1NAttSum(b, start)
	if err != nil || sumRestored != want {
		t.Fatalf("O12 twice did not restore: %d != %d (%v)", sumRestored, want, err)
	}
	// Index consistency after the updates: a range lookup must agree
	// with brute force again.
	got, err := hyper.RangeLookupHundred(b, 20)
	if err != nil {
		t.Fatal(err)
	}
	wantSet := map[hyper.NodeID]bool{}
	for id := hyper.NodeID(1); id <= hyper.NodeID(lay.Total()); id++ {
		n, err := b.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Hundred >= 20 && n.Hundred <= 29 {
			wantSet[id] = true
		}
	}
	if len(got) != len(wantSet) {
		t.Fatalf("range lookup after O12: %d nodes, want %d (index out of sync)", len(got), len(wantSet))
	}

	// O13: prune at million ∈ [x, x+9999].
	x := int32(rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
	got13, err := hyper.Closure1NPred(b, start, x)
	if err != nil {
		t.Fatal(err)
	}
	want13 := map[hyper.NodeID]bool{}
	var walk func(id hyper.NodeID)
	walk = func(id hyper.NodeID) {
		n, err := b.Node(id)
		if err != nil {
			t.Fatal(err)
		}
		if n.Million >= x && n.Million <= x+9999 {
			return
		}
		want13[id] = true
		kids, err := b.Children(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, k := range kids {
			walk(k)
		}
	}
	walk(start)
	if len(got13) != len(want13) {
		t.Fatalf("O13 returned %d nodes, want %d", len(got13), len(want13))
	}
	for _, id := range got13 {
		if !want13[id] {
			t.Fatalf("O13 returned pruned node %d", id)
		}
	}
}

func testClosureMN(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(6))
	start := lay.RandomClosureStart(rng)
	got, err := hyper.ClosureMN(b, start)
	if err != nil {
		t.Fatal(err)
	}
	// Model: BFS over Parts with dedup.
	want := map[hyper.NodeID]bool{start: true}
	queue := []hyper.NodeID{start}
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		parts, err := b.Parts(id)
		if err != nil {
			t.Fatal(err)
		}
		for _, p := range parts {
			if !want[p] {
				want[p] = true
				queue = append(queue, p)
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("O14 closureMN returned %d nodes, want %d", len(got), len(want))
	}
	seen := map[hyper.NodeID]bool{}
	for _, id := range got {
		if seen[id] {
			t.Fatalf("O14 duplicated node %d", id)
		}
		seen[id] = true
		if !want[id] {
			t.Fatalf("O14 returned unreachable node %d", id)
		}
	}
}

func testClosureMNAtt(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(7))
	start := lay.RandomClosureStart(rng)
	const depth = 25

	got, err := hyper.ClosureMNAtt(b, start, depth)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) > depth {
		t.Fatalf("O15 returned %d nodes, depth bound is %d", len(got), depth)
	}
	// Model: follow the single outgoing edge as a chain until depth or
	// a repeat (the test database has out-degree exactly one).
	var wantChain []hyper.NodeID
	seen := map[hyper.NodeID]bool{start: true}
	cur := start
	var wantDist []int64
	dist := int64(0)
	for i := 0; i < depth; i++ {
		edges, err := b.RefsTo(cur)
		if err != nil {
			t.Fatal(err)
		}
		next := edges[0].To
		if seen[next] {
			break
		}
		seen[next] = true
		dist += int64(edges[0].OffsetTo)
		wantChain = append(wantChain, next)
		wantDist = append(wantDist, dist)
		cur = next
	}
	if len(got) != len(wantChain) {
		t.Fatalf("O15 returned %d nodes, want chain of %d", len(got), len(wantChain))
	}
	for i := range got {
		if got[i] != wantChain[i] {
			t.Fatalf("O15 chain diverges at %d: %d != %d", i, got[i], wantChain[i])
		}
	}

	// O18: same chain with accumulated offsetTo distances.
	pairs, err := hyper.ClosureMNAttLinkSum(b, start, depth)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) != len(wantChain) {
		t.Fatalf("O18 returned %d pairs, want %d", len(pairs), len(wantChain))
	}
	for i, p := range pairs {
		if p.ID != wantChain[i] || p.Dist != wantDist[i] {
			t.Fatalf("O18 pair %d = {%d %d}, want {%d %d}", i, p.ID, p.Dist, wantChain[i], wantDist[i])
		}
	}
}

func testEditing(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(8))

	// O16: forward then backward restores the text.
	id := lay.RandomTextNode(rng)
	before, err := b.Text(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := hyper.TextNodeEdit(b, id, true); err != nil {
		t.Fatal(err)
	}
	mid, err := b.Text(id)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(mid, hyper.VersionWordEdit) || strings.Contains(mid, hyper.VersionWord+" ") && len(mid) == len(before) {
		t.Fatalf("O16 forward produced %q", mid[:40])
	}
	if len(mid) != len(before)+3 { // three markers, one char longer each
		t.Fatalf("O16 length %d -> %d, want +3", len(before), len(mid))
	}
	if err := hyper.TextNodeEdit(b, id, false); err != nil {
		t.Fatal(err)
	}
	after, err := b.Text(id)
	if err != nil {
		t.Fatal(err)
	}
	if after != before {
		t.Fatal("O16 twice did not restore the text")
	}

	// O17: inverting the same rectangle twice restores the bitmap.
	fid, ok := lay.RandomFormNode(rng)
	if !ok {
		t.Skip("database too small for form nodes")
	}
	r := hyper.Rect{X: 10, Y: 12, W: 30, H: 40}
	if err := hyper.FormNodeEdit(b, fid, r); err != nil {
		t.Fatal(err)
	}
	bm, err := b.Form(fid)
	if err != nil {
		t.Fatal(err)
	}
	if black := bm.CountBlack(); black != 30*40 {
		t.Fatalf("O17 inverted %d pixels, want %d", black, 30*40)
	}
	if err := hyper.FormNodeEdit(b, fid, r); err != nil {
		t.Fatal(err)
	}
	bm, err = b.Form(fid)
	if err != nil {
		t.Fatal(err)
	}
	if black := bm.CountBlack(); black != 0 {
		t.Fatalf("O17 twice left %d black pixels", black)
	}
}

func testBlobs(t *testing.T, cfg Config) {
	b := cfg.Open(t)
	defer b.Close()
	if _, err := b.GetBlob("absent"); err == nil {
		t.Fatal("GetBlob of missing key succeeded")
	}
	if err := b.PutBlob("k", []byte("v1")); err != nil {
		t.Fatal(err)
	}
	if err := b.PutBlob("k", []byte("v2 longer")); err != nil {
		t.Fatal(err)
	}
	got, err := b.GetBlob("k")
	if err != nil || string(got) != "v2 longer" {
		t.Fatalf("GetBlob = %q %v", got, err)
	}
	if err := b.DeleteBlob("k"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.GetBlob("k"); err == nil {
		t.Fatal("deleted blob still readable")
	}
	if err := b.DeleteBlob("k"); err != nil {
		t.Fatalf("DeleteBlob not idempotent: %v", err)
	}
}

func testColdCorrectness(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	rng := rand.New(rand.NewSource(9))
	id := lay.RandomNode(rng)
	warm, err := b.Hundred(id)
	if err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.DropCaches(); err != nil {
		t.Fatalf("DropCaches: %v", err)
	}
	cold, err := b.Hundred(id)
	if err != nil || cold != warm {
		t.Fatalf("cold read = %d %v, want %d", cold, err, warm)
	}
	// A full closure works cold too.
	start := lay.RandomClosureStart(rng)
	nodes, err := hyper.Closure1N(b, start)
	if err != nil || len(nodes) != hyper.ClosureSize(lay.ClosureStartLevel(), lay.LeafLevel) {
		t.Fatalf("cold closure: %d nodes (%v)", len(nodes), err)
	}
}

func testPersistence(t *testing.T, cfg Config) {
	if cfg.Reopen == nil {
		t.Skip("backend has no reopen persistence")
	}
	b, lay := cfg.generate(t)
	rng := rand.New(rand.NewSource(10))
	id := lay.RandomNode(rng)
	want, err := b.Node(id)
	if err != nil {
		t.Fatal(err)
	}
	tid := lay.RandomTextNode(rng)
	wantText, err := b.Text(tid)
	if err != nil {
		t.Fatal(err)
	}
	b2 := cfg.Reopen(t, b)
	defer b2.Close()
	got, err := b2.Node(id)
	if err != nil || got != want {
		t.Fatalf("after reopen: %+v %v, want %+v", got, err, want)
	}
	gotText, err := b2.Text(tid)
	if err != nil || gotText != wantText {
		t.Fatalf("text lost across reopen (%v)", err)
	}
	kids, err := b2.Children(1)
	if err != nil || len(kids) != hyper.FanOut {
		t.Fatalf("root children after reopen: %v %v", kids, err)
	}
}

func testErrors(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	missing := hyper.NodeID(lay.Total() + 1000)
	if _, err := b.Node(missing); err == nil {
		t.Fatal("Node of missing id succeeded")
	}
	if _, err := b.Hundred(missing); err == nil {
		t.Fatal("Hundred of missing id succeeded")
	}
	if _, err := b.Children(missing); err == nil {
		t.Fatal("Children of missing id succeeded")
	}
	// Content type mismatches.
	if _, err := b.Text(1); err == nil { // root is internal
		t.Fatal("Text of internal node succeeded")
	}
	rng := rand.New(rand.NewSource(11))
	tid := lay.RandomTextNode(rng)
	if _, err := b.Form(tid); err == nil {
		t.Fatal("Form of text node succeeded")
	}
	// Duplicate creation.
	if err := b.CreateNode(hyper.Node{ID: 1}, 0); err == nil {
		t.Fatal("duplicate CreateNode succeeded")
	}
}

func testSchemaModification(t *testing.T, cfg Config) {
	b, lay := cfg.generate(t)
	defer b.Close()
	sm, ok := b.(hyper.SchemaModifier)
	if !ok {
		t.Skip("backend does not implement dynamic schema modification")
	}
	// §6.8 extension 1: add a DrawNode type with a new attribute.
	kind, err := sm.AddClass("DrawNode")
	if err != nil {
		t.Fatal(err)
	}
	if kind < hyper.KindUser {
		t.Fatalf("dynamic class got reserved kind %d", kind)
	}
	if _, err := sm.AddClass("DrawNode"); err == nil {
		t.Fatal("duplicate class registration succeeded")
	}
	if err := sm.AddAttribute(kind, "circles"); err != nil {
		t.Fatal(err)
	}
	classes, err := sm.Classes()
	if err != nil || classes["DrawNode"] != kind {
		t.Fatalf("Classes = %v %v", classes, err)
	}
	// Attach a dynamic attribute to an existing node.
	rng := rand.New(rand.NewSource(12))
	id := lay.RandomNode(rng)
	if err := sm.SetAttr(id, "circles", 7); err != nil {
		t.Fatal(err)
	}
	v, found, err := sm.Attr(id, "circles")
	if err != nil || !found || v != 7 {
		t.Fatalf("Attr = %d %v %v", v, found, err)
	}
	if _, found, _ := sm.Attr(id, "rectangles"); found {
		t.Fatal("unset attribute reported present")
	}
}
