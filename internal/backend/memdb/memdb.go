// Package memdb maps the HyperModel schema onto an in-memory object
// graph with whole-image snapshot persistence — the Smalltalk-80 style
// system of the paper's three-way comparison (/ANDE89/).
//
// Characteristics this mapping reproduces:
//
//   - warm operations are pointer-chasing speed;
//   - "cold" means reloading the whole image from the snapshot file
//     (DropCaches), so cold cost is flat and large, independent of the
//     operation;
//   - there are no secondary indexes: range lookups scan every node,
//     exactly the behaviour that made image systems poor at O3/O4;
//   - Commit rewrites the snapshot, so commit cost scales with database
//     size, not with the transaction's write set.
package memdb

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"os"
	"sort"
	"sync"

	"hypermodel/internal/hyper"
)

// node is the in-image object: attributes plus directly-held
// relationship collections (the OODB "complex object").
type node struct {
	Attrs    hyper.Node
	Children []hyper.NodeID
	Parent   hyper.NodeID
	Parts    []hyper.NodeID
	PartOf   []hyper.NodeID
	RefsTo   []hyper.Edge
	RefsFrom []hyper.Edge
	Text     string
	Form     []byte // EncodeBitmap format; nil unless KindForm
}

// image is the gob-serialized snapshot.
type image struct {
	Nodes     map[hyper.NodeID]*node
	Blobs     map[string][]byte
	Classes   map[string]hyper.Kind
	ClassAttr map[hyper.Kind][]string
	UserAttrs map[hyper.NodeID]map[string]int64
	NextKind  hyper.Kind
}

func newImage() *image {
	return &image{
		Nodes:     make(map[hyper.NodeID]*node),
		Blobs:     make(map[string][]byte),
		Classes:   make(map[string]hyper.Kind),
		ClassAttr: make(map[hyper.Kind][]string),
		UserAttrs: make(map[hyper.NodeID]map[string]int64),
		NextKind:  hyper.KindUser,
	}
}

// DB implements hyper.Backend over an in-memory image. Read-only
// operations take the read half of mu, so concurrent readers proceed in
// parallel; every mutation (including Commit/DropCaches, which swap the
// image) takes the write half.
type DB struct {
	mu      sync.RWMutex
	path    string // snapshot file; empty = volatile (no persistence)
	img     *image
	dirty   bool   // image differs from the last snapshot
	commits uint64 // snapshots written (guarded by mu)
	reloads uint64 // images reread from disk (guarded by mu)
}

var (
	_ hyper.DB             = (*DB)(nil)
	_ hyper.SchemaModifier = (*DB)(nil)
	_ hyper.StatsReporter  = (*DB)(nil)
)

// Open loads (or initializes) an image. An empty path yields a volatile
// database whose Commit and DropCaches are no-ops.
func Open(path string) (*DB, error) {
	db := &DB{path: path, img: newImage()}
	if path == "" {
		return db, nil
	}
	data, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return db, nil
	}
	if err != nil {
		return nil, fmt.Errorf("memdb: open %s: %w", path, err)
	}
	img, err := decodeImage(data)
	if err != nil {
		return nil, fmt.Errorf("memdb: open %s: %w", path, err)
	}
	db.img = img
	return db, nil
}

func decodeImage(data []byte) (*image, error) {
	img := newImage()
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(img); err != nil {
		return nil, fmt.Errorf("decode image: %w", err)
	}
	return img, nil
}

func (d *DB) Name() string { return "memdb" }

func (d *DB) getNode(id hyper.NodeID) (*node, error) {
	n, ok := d.img.Nodes[id]
	if !ok {
		return nil, fmt.Errorf("%w: node %d", hyper.ErrNotFound, id)
	}
	return n, nil
}

func (d *DB) create(n hyper.Node, text string, form []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	if _, exists := d.img.Nodes[n.ID]; exists {
		return fmt.Errorf("memdb: node %d already exists", n.ID)
	}
	d.img.Nodes[n.ID] = &node{Attrs: n, Text: text, Form: form}
	return nil
}

// CreateNode stores an interior node. The near hint is meaningless in
// an image system and is ignored.
func (d *DB) CreateNode(n hyper.Node, _ hyper.NodeID) error {
	return d.create(n, "", nil)
}

// CreateTextNode stores a TextNode leaf.
func (d *DB) CreateTextNode(n hyper.Node, text string, _ hyper.NodeID) error {
	return d.create(n, text, nil)
}

// CreateFormNode stores a FormNode leaf.
func (d *DB) CreateFormNode(n hyper.Node, bm hyper.Bitmap, _ hyper.NodeID) error {
	return d.create(n, "", hyper.EncodeBitmap(bm))
}

// AddChild appends child to parent's ordered children.
func (d *DB) AddChild(parent, child hyper.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	p, err := d.getNode(parent)
	if err != nil {
		return err
	}
	c, err := d.getNode(child)
	if err != nil {
		return err
	}
	if c.Parent != 0 {
		return fmt.Errorf("memdb: node %d already has a parent", child)
	}
	p.Children = append(p.Children, child)
	c.Parent = parent
	return nil
}

// AddPart relates part to whole in the M-N aggregation.
func (d *DB) AddPart(whole, part hyper.NodeID) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	w, err := d.getNode(whole)
	if err != nil {
		return err
	}
	p, err := d.getNode(part)
	if err != nil {
		return err
	}
	w.Parts = append(w.Parts, part)
	p.PartOf = append(p.PartOf, whole)
	return nil
}

// AddRef stores a refTo/refFrom association.
func (d *DB) AddRef(e hyper.Edge) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	from, err := d.getNode(e.From)
	if err != nil {
		return err
	}
	to, err := d.getNode(e.To)
	if err != nil {
		return err
	}
	from.RefsTo = append(from.RefsTo, e)
	to.RefsFrom = append(to.RefsFrom, e)
	return nil
}

// Node returns a node's attributes.
func (d *DB) Node(id hyper.NodeID) (hyper.Node, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return hyper.Node{}, err
	}
	return n.Attrs, nil
}

// Hundred returns the hundred attribute.
func (d *DB) Hundred(id hyper.NodeID) (int32, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return 0, err
	}
	return n.Attrs.Hundred, nil
}

// SetHundred updates the hundred attribute.
func (d *DB) SetHundred(id hyper.NodeID, v int32) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	n, err := d.getNode(id)
	if err != nil {
		return err
	}
	n.Attrs.Hundred = v
	return nil
}

// OIDOf returns the image's object identifier: object identity in an
// image system is the reference itself, so the OID is the uniqueId.
func (d *DB) OIDOf(id hyper.NodeID) (hyper.OID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, err := d.getNode(id); err != nil {
		return 0, err
	}
	return hyper.OID(id), nil
}

// HundredByOID is a direct object access.
func (d *DB) HundredByOID(oid hyper.OID) (int32, error) {
	return d.Hundred(hyper.NodeID(oid))
}

// RangeHundred scans all nodes: image systems have no secondary
// indexes, which is exactly their O3/O4 weakness.
func (d *DB) RangeHundred(lo, hi int32) ([]hyper.NodeID, error) {
	return d.scanRange(func(n *node) int32 { return n.Attrs.Hundred }, lo, hi)
}

// RangeMillion scans all nodes.
func (d *DB) RangeMillion(lo, hi int32) ([]hyper.NodeID, error) {
	return d.scanRange(func(n *node) int32 { return n.Attrs.Million }, lo, hi)
}

func (d *DB) scanRange(attr func(*node) int32, lo, hi int32) ([]hyper.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	var out []hyper.NodeID
	for id, n := range d.img.Nodes {
		if v := attr(n); v >= lo && v <= hi {
			out = append(out, id)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, nil
}

// Children returns the ordered children.
func (d *DB) Children(id hyper.NodeID) ([]hyper.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return nil, err
	}
	return append([]hyper.NodeID(nil), n.Children...), nil
}

// Parts returns the M-N parts.
func (d *DB) Parts(id hyper.NodeID) ([]hyper.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return nil, err
	}
	return append([]hyper.NodeID(nil), n.Parts...), nil
}

// RefsTo returns the outgoing reference edges.
func (d *DB) RefsTo(id hyper.NodeID) ([]hyper.Edge, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return nil, err
	}
	return append([]hyper.Edge(nil), n.RefsTo...), nil
}

// Parent returns the 1-N parent.
func (d *DB) Parent(id hyper.NodeID) (hyper.NodeID, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return 0, false, err
	}
	return n.Parent, n.Parent != 0, nil
}

// PartOf returns the wholes this node is part of.
func (d *DB) PartOf(id hyper.NodeID) ([]hyper.NodeID, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return nil, err
	}
	return append([]hyper.NodeID(nil), n.PartOf...), nil
}

// RefsFrom returns the incoming reference edges.
func (d *DB) RefsFrom(id hyper.NodeID) ([]hyper.Edge, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return nil, err
	}
	return append([]hyper.Edge(nil), n.RefsFrom...), nil
}

// ScanTen visits the ten attribute of nodes with uniqueId in
// [first, last].
func (d *DB) ScanTen(first, last hyper.NodeID, visit func(hyper.NodeID, int32) bool) error {
	d.mu.RLock()
	defer d.mu.RUnlock()
	for id := first; id <= last; id++ {
		n, ok := d.img.Nodes[id]
		if !ok {
			continue
		}
		if !visit(id, n.Attrs.Ten) {
			return nil
		}
	}
	return nil
}

// Text returns a TextNode's content.
func (d *DB) Text(id hyper.NodeID) (string, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return "", err
	}
	if n.Attrs.Kind != hyper.KindText {
		return "", fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, n.Attrs.Kind)
	}
	return n.Text, nil
}

// SetText replaces a TextNode's content.
func (d *DB) SetText(id hyper.NodeID, text string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	n, err := d.getNode(id)
	if err != nil {
		return err
	}
	if n.Attrs.Kind != hyper.KindText {
		return fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, n.Attrs.Kind)
	}
	n.Text = text
	return nil
}

// Form returns a FormNode's bitmap.
func (d *DB) Form(id hyper.NodeID) (hyper.Bitmap, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	n, err := d.getNode(id)
	if err != nil {
		return hyper.Bitmap{}, err
	}
	if n.Attrs.Kind != hyper.KindForm {
		return hyper.Bitmap{}, fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, n.Attrs.Kind)
	}
	return hyper.DecodeBitmap(n.Form)
}

// SetForm replaces a FormNode's bitmap.
func (d *DB) SetForm(id hyper.NodeID, bm hyper.Bitmap) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	n, err := d.getNode(id)
	if err != nil {
		return err
	}
	if n.Attrs.Kind != hyper.KindForm {
		return fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, n.Attrs.Kind)
	}
	n.Form = hyper.EncodeBitmap(bm)
	return nil
}

// PutBlob stores a named value.
func (d *DB) PutBlob(key string, data []byte) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	d.img.Blobs[key] = append([]byte(nil), data...)
	return nil
}

// GetBlob retrieves a named value.
func (d *DB) GetBlob(key string) ([]byte, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	data, ok := d.img.Blobs[key]
	if !ok {
		return nil, fmt.Errorf("%w: blob %q", hyper.ErrNotFound, key)
	}
	return append([]byte(nil), data...), nil
}

// DeleteBlob removes a named value (idempotent).
func (d *DB) DeleteBlob(key string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	delete(d.img.Blobs, key)
	return nil
}

// Commit writes the image snapshot: whole-image persistence, so the
// cost scales with database size regardless of what changed.
func (d *DB) Commit() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.commitLocked()
}

func (d *DB) commitLocked() error {
	if d.path == "" || !d.dirty {
		// Nothing changed since the last snapshot: an image system
		// only saves when the image is dirty.
		return nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(d.img); err != nil {
		return fmt.Errorf("memdb: encode image: %w", err)
	}
	tmp := d.path + ".tmp"
	if err := os.WriteFile(tmp, buf.Bytes(), 0o644); err != nil {
		return fmt.Errorf("memdb: write image: %w", err)
	}
	if err := os.Rename(tmp, d.path); err != nil {
		return fmt.Errorf("memdb: install image: %w", err)
	}
	d.dirty = false
	d.commits++
	return nil
}

// DropCaches reloads the image from the snapshot file: the image
// system's "cold start" is rereading everything.
func (d *DB) DropCaches() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.path == "" {
		return nil
	}
	data, err := os.ReadFile(d.path)
	if os.IsNotExist(err) {
		d.img = newImage()
		d.dirty = false
		return nil
	}
	if err != nil {
		return fmt.Errorf("memdb: reload: %w", err)
	}
	img, err := decodeImage(data)
	if err != nil {
		return fmt.Errorf("memdb: reload: %w", err)
	}
	d.img = img
	d.dirty = false
	d.reloads++
	return nil
}

// Abort discards uncommitted changes by reloading the last snapshot —
// the image system's rollback. A volatile database (no snapshot path)
// cannot roll back; Abort is then a no-op.
func (d *DB) Abort() error { return d.DropCaches() }

// Close writes the final snapshot.
func (d *DB) Close() error { return d.Commit() }

// Snapshot is unsupported: the image is one mutable object graph with
// no retained versions to pin a read view to.
func (d *DB) Snapshot() (hyper.DB, error) { return nil, hyper.ErrNoSnapshots }

// CommitStats reports snapshot writes. Whole-image persistence has one
// "flush" per commit and nothing to batch, and optimistic conflicts
// cannot arise single-node, so only the commit counters are non-zero.
func (d *DB) CommitStats() hyper.CommitStats {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return hyper.CommitStats{Commits: d.commits, Flushes: d.commits}
}

// CacheStats reports the image system's cold-start counters: a "miss"
// (and its disk read) is a whole-image reload, everything else is a
// pointer chase in memory and is not counted.
func (d *DB) CacheStats() (hits, misses, diskReads uint64) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return 0, d.reloads, d.reloads
}

// NodeCount reports the number of nodes in the image (diagnostics).
func (d *DB) NodeCount() int {
	d.mu.RLock()
	defer d.mu.RUnlock()
	return len(d.img.Nodes)
}

// AddClass registers a dynamic node class (R4).
func (d *DB) AddClass(name string) (hyper.Kind, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	if k, ok := d.img.Classes[name]; ok {
		return k, fmt.Errorf("memdb: class %q already exists", name)
	}
	k := d.img.NextKind
	d.img.NextKind++
	d.img.Classes[name] = k
	return k, nil
}

// Classes lists the dynamic classes.
func (d *DB) Classes() (map[string]hyper.Kind, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	out := make(map[string]hyper.Kind, len(d.img.Classes))
	for n, k := range d.img.Classes {
		out[n] = k
	}
	return out, nil
}

// AddAttribute declares a dynamic attribute on a class.
func (d *DB) AddAttribute(class hyper.Kind, attr string) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	for _, a := range d.img.ClassAttr[class] {
		if a == attr {
			return fmt.Errorf("memdb: attribute %q already declared", attr)
		}
	}
	d.img.ClassAttr[class] = append(d.img.ClassAttr[class], attr)
	return nil
}

// SetAttr stores a dynamic attribute value.
func (d *DB) SetAttr(id hyper.NodeID, attr string, v int64) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.dirty = true
	if _, err := d.getNode(id); err != nil {
		return err
	}
	m := d.img.UserAttrs[id]
	if m == nil {
		m = make(map[string]int64)
		d.img.UserAttrs[id] = m
	}
	m[attr] = v
	return nil
}

// Attr reads a dynamic attribute value.
func (d *DB) Attr(id hyper.NodeID, attr string) (int64, bool, error) {
	d.mu.RLock()
	defer d.mu.RUnlock()
	if _, err := d.getNode(id); err != nil {
		return 0, false, err
	}
	v, ok := d.img.UserAttrs[id][attr]
	return v, ok, nil
}
