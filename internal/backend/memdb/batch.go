package memdb

import "hypermodel/internal/hyper"

// Batched reads (hyper.BatchReader): the image backend's per-call cost
// is the mutex round, so each batch method takes the lock once for the
// whole frontier instead of once per node.

// batchLocked serves one batch under a single lock acquisition. get
// runs with d.mu held and must copy anything it returns.
func batchLocked[T any](d *DB, ids []hyper.NodeID, get func(*node) T) ([]T, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]T, len(ids))
	for i, id := range ids {
		n, err := d.getNode(id)
		if err != nil {
			return nil, &hyper.BatchError{Index: i, Err: err}
		}
		out[i] = get(n)
	}
	return out, nil
}

// NodesBatch returns the attributes of each listed node.
func (d *DB) NodesBatch(ids []hyper.NodeID) ([]hyper.Node, error) {
	return batchLocked(d, ids, func(n *node) hyper.Node { return n.Attrs })
}

// HundredBatch returns the hundred attribute of each listed node.
func (d *DB) HundredBatch(ids []hyper.NodeID) ([]int32, error) {
	return batchLocked(d, ids, func(n *node) int32 { return n.Attrs.Hundred })
}

// ChildrenBatch returns each node's ordered children.
func (d *DB) ChildrenBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	return batchLocked(d, ids, func(n *node) []hyper.NodeID {
		return append([]hyper.NodeID(nil), n.Children...)
	})
}

// PartsBatch returns each node's M-N parts.
func (d *DB) PartsBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	return batchLocked(d, ids, func(n *node) []hyper.NodeID {
		return append([]hyper.NodeID(nil), n.Parts...)
	})
}

// RefsToBatch returns each node's outgoing association edges.
func (d *DB) RefsToBatch(ids []hyper.NodeID) ([][]hyper.Edge, error) {
	return batchLocked(d, ids, func(n *node) []hyper.Edge {
		return append([]hyper.Edge(nil), n.RefsTo...)
	})
}
