package memdb

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/backendtest"
	"hypermodel/internal/hyper"
)

func TestConformance(t *testing.T) {
	backendtest.Run(t, backendtest.Config{
		Open: func(t *testing.T) hyper.Backend {
			db, err := Open(filepath.Join(t.TempDir(), "image.gob"))
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		Reopen: func(t *testing.T, b hyper.Backend) hyper.Backend {
			db := b.(*DB)
			path := db.path
			if err := db.Close(); err != nil {
				t.Fatal(err)
			}
			db2, err := Open(path)
			if err != nil {
				t.Fatal(err)
			}
			return db2
		},
	})
}

func TestVolatileDatabase(t *testing.T) {
	db, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateNode(hyper.Node{ID: 1, Hundred: 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	// A volatile image keeps its contents: there is no snapshot to
	// reload from.
	if h, err := db.Hundred(1); err != nil || h != 5 {
		t.Fatalf("volatile db lost data: %d %v", h, err)
	}
}

func TestSnapshotDiscardUncommitted(t *testing.T) {
	path := filepath.Join(t.TempDir(), "image.gob")
	db, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := db.CreateNode(hyper.Node{ID: 1, Hundred: 5}, 0); err != nil {
		t.Fatal(err)
	}
	if err := db.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := db.SetHundred(1, 99); err != nil {
		t.Fatal(err)
	}
	// DropCaches without commit reloads the last snapshot: the image
	// system's transaction semantics.
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	if h, _ := db.Hundred(1); h != 5 {
		t.Fatalf("uncommitted update survived image reload: %d", h)
	}
}
