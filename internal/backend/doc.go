// Package backend groups the concrete realizations of the HyperModel
// conceptual schema (hyper.Backend):
//
//   - oodb: the object-database mapping over the repository's object
//     store, with OIDs and clustering along the 1-N hierarchy — the
//     architecture class of GemStone and Vbase, the systems the paper
//     was written to compare;
//   - reldb: the relational mapping (per the /BLAH88/ methodology the
//     paper cites): one table per entity and relationship plus
//     attribute indexes, content out of line, no object identifiers;
//   - memdb: the Smalltalk-80-style in-memory image with whole-image
//     snapshot persistence;
//   - backendtest: the conformance suite each mapping must pass.
//
// The package's own tests assert cross-backend agreement: identical
// generation seeds must yield identical results for every benchmark
// operation, which is what makes timing comparisons between the
// mappings meaningful.
package backend
