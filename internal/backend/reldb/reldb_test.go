package reldb

import (
	"errors"
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/backendtest"
	"hypermodel/internal/hyper"
)

func TestConformance(t *testing.T) {
	var lastPath string
	backendtest.Run(t, backendtest.Config{
		Open: func(t *testing.T) hyper.Backend {
			lastPath = filepath.Join(t.TempDir(), "rel.db")
			db, err := Open(lastPath, Options{})
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		Reopen: func(t *testing.T, b hyper.Backend) hyper.Backend {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			db, err := Open(lastPath, Options{})
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
	})
}

func TestNoOIDs(t *testing.T) {
	db, err := Open(filepath.Join(t.TempDir(), "rel.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	if _, err := db.OIDOf(1); !errors.Is(err, hyper.ErrNoOIDs) {
		t.Fatalf("OIDOf = %v, want ErrNoOIDs", err)
	}
	if _, err := db.HundredByOID(1); !errors.Is(err, hyper.ErrNoOIDs) {
		t.Fatalf("HundredByOID = %v, want ErrNoOIDs", err)
	}
}

func TestChildOrderSurvivesReopen(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rel.db")
	db, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(id hyper.NodeID) {
		if err := db.CreateNode(hyper.Node{ID: id}, 0); err != nil {
			t.Fatal(err)
		}
	}
	mk(1)
	// Insert children in a scrambled ID order; the returned order must
	// be insertion order, not key order.
	order := []hyper.NodeID{5, 2, 9, 3, 7}
	for _, id := range order {
		mk(id)
		if err := db.AddChild(1, id); err != nil {
			t.Fatal(err)
		}
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(path, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	kids, err := db2.Children(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(kids) != len(order) {
		t.Fatalf("children = %v", kids)
	}
	for i := range order {
		if kids[i] != order[i] {
			t.Fatalf("children order = %v, want %v", kids, order)
		}
	}
}

func TestDuplicatePartEdgesPreserved(t *testing.T) {
	// The generator's random M-N picks can select the same part twice;
	// the relational mapping must keep both rows (seq-keyed, not
	// pair-keyed).
	db, err := Open(filepath.Join(t.TempDir(), "rel.db"), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()
	for _, id := range []hyper.NodeID{1, 2} {
		if err := db.CreateNode(hyper.Node{ID: id}, 0); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 3; i++ {
		if err := db.AddPart(1, 2); err != nil {
			t.Fatal(err)
		}
	}
	parts, err := db.Parts(1)
	if err != nil || len(parts) != 3 {
		t.Fatalf("parts = %v (%v), want three rows", parts, err)
	}
	wholes, err := db.PartOf(2)
	if err != nil || len(wholes) != 3 {
		t.Fatalf("partOf = %v (%v), want three rows", wholes, err)
	}
}
