package reldb

import (
	"fmt"
	"sort"

	"hypermodel/internal/btree"
	"hypermodel/internal/hyper"
)

// Batched reads (hyper.BatchReader). A BFS frontier of the test
// database is a contiguous uniqueId run, so a dense batch resolves
// with one B+tree range scan per table — one root-to-leaf descent and
// a sequential leaf walk — instead of one descent per node. Sparse
// batches (random samples) fall back to per-id probes in ascending key
// order.

// batchPlan is the shared preamble of every batch method: the sorted
// distinct ids, a per-distinct found flag, and the input mapping.
type batchPlan struct {
	ids      []hyper.NodeID // the caller's ids, in input order
	distinct []hyper.NodeID // sorted, deduplicated
	found    []bool         // found[i] ↔ distinct[i], set by the scan/probe
}

func newBatchPlan(ids []hyper.NodeID) *batchPlan {
	distinct := append([]hyper.NodeID(nil), ids...)
	sort.Slice(distinct, func(i, j int) bool { return distinct[i] < distinct[j] })
	w := 0
	for i, id := range distinct {
		if i == 0 || id != distinct[w-1] {
			distinct[w] = id
			w++
		}
	}
	distinct = distinct[:w]
	return &batchPlan{ids: ids, distinct: distinct, found: make([]bool, w)}
}

// dense reports whether the ids cover their key span tightly enough
// that one range scan beats per-id probes: a scan visits every row in
// the span, so sparse batches would mostly skip foreign rows.
func (p *batchPlan) dense() bool {
	span := uint64(p.distinct[len(p.distinct)-1]) - uint64(p.distinct[0]) + 1
	return span <= 4*uint64(len(p.distinct))
}

// pos returns id's index in the distinct slice.
func (p *batchPlan) pos(id hyper.NodeID) int {
	return sort.Search(len(p.distinct), func(i int) bool { return p.distinct[i] >= id })
}

// missErr builds the *hyper.BatchError for the first input id whose
// distinct slot was never found, or returns nil if all were.
func (p *batchPlan) missErr() error {
	all := true
	for _, f := range p.found {
		if !f {
			all = false
			break
		}
	}
	if all {
		return nil
	}
	for j, id := range p.ids {
		if !p.found[p.pos(id)] {
			return &hyper.BatchError{
				Index: j,
				Err:   fmt.Errorf("%w: node %d", hyper.ErrNotFound, id),
			}
		}
	}
	return nil
}

// markExisting sets found flags from the NODE table: one range scan
// when dense, per-id probes otherwise.
func (p *batchPlan) markExisting(d *DB) error {
	if p.dense() {
		lo := idKey(p.distinct[0])
		hi := btree.U64Key(uint64(p.distinct[len(p.distinct)-1]) + 1)
		i := 0
		return d.node.Scan(lo, hi, func(k, _ []byte) (bool, error) {
			id := hyper.NodeID(btree.U64FromKey(k))
			for i < len(p.distinct) && p.distinct[i] < id {
				i++
			}
			if i < len(p.distinct) && p.distinct[i] == id {
				p.found[i] = true
			}
			return true, nil
		})
	}
	for i, id := range p.distinct {
		ok, err := d.existsRow(id)
		if err != nil {
			return err
		}
		p.found[i] = ok
	}
	return nil
}

// scanOwnedBatch collects the rows of an owner-keyed relationship
// table for every distinct id: one range scan over the whole span when
// dense, one bounded scan per id otherwise. visit receives the slot in
// the distinct slice and the row value, in (owner, seq) order.
func (p *batchPlan) scanOwnedBatch(t *btree.Tree, visit func(slot int, v []byte) error) error {
	if p.dense() {
		lo := btree.U64U32Key(uint64(p.distinct[0]), 0)
		hi := btree.U64Key(uint64(p.distinct[len(p.distinct)-1]) + 1)
		i := 0
		return t.Scan(lo, hi, func(k, v []byte) (bool, error) {
			owner, _ := btree.U64U32FromKey(k)
			for i < len(p.distinct) && uint64(p.distinct[i]) < owner {
				i++
			}
			if i < len(p.distinct) && uint64(p.distinct[i]) == owner {
				return true, visit(i, v)
			}
			return true, nil
		})
	}
	for i, id := range p.distinct {
		i := i
		err := t.Scan(btree.U64U32Key(uint64(id), 0), btree.U64Key(uint64(id)+1),
			func(_, v []byte) (bool, error) { return true, visit(i, v) })
		if err != nil {
			return err
		}
	}
	return nil
}

// gather maps per-distinct values back onto the input order.
func gather[T any](p *batchPlan, vals []T) []T {
	out := make([]T, len(p.ids))
	for i, id := range p.ids {
		out[i] = vals[p.pos(id)]
	}
	return out
}

// NodesBatch returns the attributes of each listed node.
func (d *DB) NodesBatch(ids []hyper.NodeID) ([]hyper.Node, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	p := newBatchPlan(ids)
	vals := make([]hyper.Node, len(p.distinct))
	if p.dense() {
		lo := idKey(p.distinct[0])
		hi := btree.U64Key(uint64(p.distinct[len(p.distinct)-1]) + 1)
		i := 0
		err := d.node.Scan(lo, hi, func(k, v []byte) (bool, error) {
			id := hyper.NodeID(btree.U64FromKey(k))
			for i < len(p.distinct) && p.distinct[i] < id {
				i++
			}
			if i < len(p.distinct) && p.distinct[i] == id {
				n, err := decodeNodeRow(id, v)
				if err != nil {
					return false, err
				}
				vals[i] = n
				p.found[i] = true
			}
			return true, nil
		})
		if err != nil {
			return nil, err
		}
	} else {
		for i, id := range p.distinct {
			n, ok, err := d.nodeRow(id)
			if err != nil {
				return nil, err
			}
			vals[i] = n
			p.found[i] = ok
		}
	}
	if err := p.missErr(); err != nil {
		return nil, err
	}
	return gather(p, vals), nil
}

// HundredBatch returns the hundred attribute of each listed node.
func (d *DB) HundredBatch(ids []hyper.NodeID) ([]int32, error) {
	nodes, err := d.NodesBatch(ids)
	if err != nil {
		return nil, err
	}
	out := make([]int32, len(nodes))
	for i, n := range nodes {
		out[i] = n.Hundred
	}
	return out, nil
}

// ownedBatch factors ChildrenBatch and PartsBatch: existence from the
// NODE table, then the relationship rows per distinct id.
func (d *DB) ownedBatch(t *btree.Tree, ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	p := newBatchPlan(ids)
	if err := p.markExisting(d); err != nil {
		return nil, err
	}
	if err := p.missErr(); err != nil {
		return nil, err
	}
	vals := make([][]hyper.NodeID, len(p.distinct))
	err := p.scanOwnedBatch(t, func(slot int, v []byte) error {
		vals[slot] = append(vals[slot], hyper.NodeID(rowU64(v)))
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gather(p, vals), nil
}

// ChildrenBatch returns each node's ordered children.
func (d *DB) ChildrenBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	return d.ownedBatch(d.child, ids)
}

// PartsBatch returns each node's M-N parts.
func (d *DB) PartsBatch(ids []hyper.NodeID) ([][]hyper.NodeID, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	return d.ownedBatch(d.part, ids)
}

// RefsToBatch returns each node's outgoing association edges.
func (d *DB) RefsToBatch(ids []hyper.NodeID) ([][]hyper.Edge, error) {
	if len(ids) == 0 {
		return nil, nil
	}
	p := newBatchPlan(ids)
	if err := p.markExisting(d); err != nil {
		return nil, err
	}
	if err := p.missErr(); err != nil {
		return nil, err
	}
	vals := make([][]hyper.Edge, len(p.distinct))
	err := p.scanOwnedBatch(d.ref, func(slot int, v []byte) error {
		other, offFrom, offTo, err := decodeRefRow(v)
		if err != nil {
			return err
		}
		vals[slot] = append(vals[slot], hyper.Edge{
			From: p.distinct[slot], To: other, OffsetFrom: offFrom, OffsetTo: offTo,
		})
		return nil
	})
	if err != nil {
		return nil, err
	}
	return gather(p, vals), nil
}

// nodeRow probes the NODE table for one decoded row.
func (d *DB) nodeRow(id hyper.NodeID) (hyper.Node, bool, error) {
	row, ok, err := d.node.Get(idKey(id))
	if err != nil || !ok {
		return hyper.Node{}, false, err
	}
	n, err := decodeNodeRow(id, row)
	if err != nil {
		return hyper.Node{}, false, err
	}
	return n, true, nil
}

// existsRow probes the NODE table for bare existence.
func (d *DB) existsRow(id hyper.NodeID) (bool, error) {
	_, ok, err := d.node.Get(idKey(id))
	return ok, err
}
