// Package reldb maps the HyperModel schema onto a relational design,
// following the methodology the paper cites (/BLAH88/, "Relational
// Database Design using an Object-Oriented Methodology"):
//
//	NODE(uniqueId PK, kind, ten, hundred, thousand, million)
//	CHILD(parentId, seq PK, childId)        -- ordered 1-N
//	CHILDINV(childId PK, parentId)
//	PART(wholeId, seq PK, partId)           -- M-N aggregation
//	PARTINV(partId, seq PK, wholeId)
//	REF(fromId, seq PK, toId, offFrom, offTo)   -- M-N association
//	REFINV(toId, seq PK, fromId, offFrom, offTo)
//	IDXH(hundred, uniqueId), IDXM(million, uniqueId)
//	CONTENT(uniqueId PK, blob)              -- text/bitmap out of line
//
// Every table and index is a B+tree over the shared page store. The
// mapping reproduces the relational system's benchmark profile: key
// and range lookups are competitive (indexes), but every relationship
// traversal is an index join with no physical clustering along the
// aggregation hierarchy, so closures pay per-edge lookups.
//
// There are no system object identifiers: OIDOf returns
// hyper.ErrNoOIDs, and operation O2 is reported "not applicable", as
// the paper permits for such systems.
package reldb

import (
	"encoding/binary"
	"fmt"

	"hypermodel/internal/btree"
	"hypermodel/internal/hyper"
	"hypermodel/internal/objstore"
	"hypermodel/internal/storage/store"
)

// Root slots.
const (
	rootNode = iota
	rootChild
	rootChildInv
	rootPart
	rootPartInv
	rootRef
	rootRefInv
	rootIdxH
	rootIdxM
	rootContent
	rootBlobs
	rootHeapTable
	rootHeapMeta
	rootCatalog
)

// Options tune the underlying page store.
type Options struct {
	Store store.Options
}

// Space is what the relational mapping needs from its page layer: the
// core page operations plus cache control and lifecycle. The local
// store satisfies it, and so does a read-only snapshot view — which is
// how Snapshot reopens the same mapping over a pinned version.
type Space interface {
	store.Space
	DropCache() error
	Abort() error
	Close() error
	CacheStats() (hits, misses, reads uint64)
}

// DB implements hyper.Backend with the relational mapping.
type DB struct {
	st       Space
	node     *btree.Tree
	child    *btree.Tree
	childInv *btree.Tree
	part     *btree.Tree
	partInv  *btree.Tree
	ref      *btree.Tree
	refInv   *btree.Tree
	idxH     *btree.Tree
	idxM     *btree.Tree
	content  *btree.Tree
	blobs    *btree.Tree
	cat      *btree.Tree
	heap     *objstore.Store // out-of-line storage for text/bitmap blobs

	// ro is set when the space is a read-only view (a snapshot):
	// mutating entry points then fail with store.ErrReadOnly instead of
	// tripping the view's MarkDirty panic somewhere inside a B-tree
	// update.
	ro bool
}

var (
	_ hyper.DB             = (*DB)(nil)
	_ hyper.SchemaModifier = (*DB)(nil)
	_ hyper.StatsReporter  = (*DB)(nil)
)

// Open opens (or creates) a relational database at path.
func Open(path string, opts Options) (*DB, error) {
	st, err := store.Open(path, &opts.Store)
	if err != nil {
		return nil, err
	}
	db, err := New(st)
	if err != nil {
		st.Close()
		return nil, err
	}
	return db, nil
}

// New wires the relational mapping over an existing page space.
func New(st Space) (*DB, error) {
	d := &DB{st: st}
	for _, x := range []struct {
		tree **btree.Tree
		slot int
	}{
		{&d.node, rootNode}, {&d.child, rootChild}, {&d.childInv, rootChildInv},
		{&d.part, rootPart}, {&d.partInv, rootPartInv},
		{&d.ref, rootRef}, {&d.refInv, rootRefInv},
		{&d.idxH, rootIdxH}, {&d.idxM, rootIdxM},
		{&d.content, rootContent}, {&d.blobs, rootBlobs}, {&d.cat, rootCatalog},
	} {
		t, err := btree.Open(st, x.slot)
		if err != nil {
			return nil, err
		}
		*x.tree = t
	}
	heap, err := objstore.Open(st, rootHeapTable, rootHeapMeta, objstore.Options{})
	if err != nil {
		return nil, err
	}
	d.heap = heap
	if rv, ok := st.(interface{ ReadOnly() bool }); ok && rv.ReadOnly() {
		d.ro = true
	}
	return d, nil
}

// writable guards every mutating entry point: a DB opened over a
// read-only view (DB.Snapshot) rejects updates at the API boundary.
func (d *DB) writable() error {
	if d.ro {
		return store.ErrReadOnly
	}
	return nil
}

func (d *DB) Name() string { return "reldb" }

// Store exposes the underlying page space (harness diagnostics).
func (d *DB) Store() Space { return d.st }

// --- row codecs ---

// NODE row: kind u8, ten/hundred/thousand/million i32.
func encodeNodeRow(n hyper.Node) []byte {
	b := make([]byte, 17)
	b[0] = byte(n.Kind)
	binary.LittleEndian.PutUint32(b[1:], uint32(n.Ten))
	binary.LittleEndian.PutUint32(b[5:], uint32(n.Hundred))
	binary.LittleEndian.PutUint32(b[9:], uint32(n.Thousand))
	binary.LittleEndian.PutUint32(b[13:], uint32(n.Million))
	return b
}

func decodeNodeRow(id hyper.NodeID, b []byte) (hyper.Node, error) {
	if len(b) != 17 {
		return hyper.Node{}, fmt.Errorf("reldb: NODE row has %d bytes", len(b))
	}
	return hyper.Node{
		ID:       id,
		Kind:     hyper.Kind(b[0]),
		Ten:      int32(binary.LittleEndian.Uint32(b[1:])),
		Hundred:  int32(binary.LittleEndian.Uint32(b[5:])),
		Thousand: int32(binary.LittleEndian.Uint32(b[9:])),
		Million:  int32(binary.LittleEndian.Uint32(b[13:])),
	}, nil
}

// REF row: otherId u64, offFrom i32, offTo i32.
func encodeRefRow(other hyper.NodeID, offFrom, offTo int32) []byte {
	b := make([]byte, 16)
	binary.LittleEndian.PutUint64(b[0:], uint64(other))
	binary.LittleEndian.PutUint32(b[8:], uint32(offFrom))
	binary.LittleEndian.PutUint32(b[12:], uint32(offTo))
	return b
}

func decodeRefRow(b []byte) (hyper.NodeID, int32, int32, error) {
	if len(b) != 16 {
		return 0, 0, 0, fmt.Errorf("reldb: REF row has %d bytes", len(b))
	}
	return hyper.NodeID(binary.LittleEndian.Uint64(b[0:])),
		int32(binary.LittleEndian.Uint32(b[8:])),
		int32(binary.LittleEndian.Uint32(b[12:])), nil
}

func u64Row(v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return b[:]
}

func rowU64(b []byte) uint64 { return binary.LittleEndian.Uint64(b) }

func idKey(id hyper.NodeID) []byte { return btree.U64Key(uint64(id)) }

// nextSeq counts the rows with the given owner prefix in an ordered
// relationship table, yielding the next sequence number.
func nextSeq(t *btree.Tree, owner hyper.NodeID) (uint32, error) {
	var n uint32
	from := btree.U64U32Key(uint64(owner), 0)
	to := btree.U64Key(uint64(owner) + 1)
	err := t.Scan(from, to, func(_, _ []byte) (bool, error) { n++; return true, nil })
	return n, err
}

// --- creation ---

func (d *DB) createRow(n hyper.Node, content []byte) error {
	if err := d.writable(); err != nil {
		return err
	}
	key := idKey(n.ID)
	if _, ok, err := d.node.Get(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("reldb: node %d already exists", n.ID)
	}
	if err := d.node.Put(key, encodeNodeRow(n)); err != nil {
		return err
	}
	if err := d.idxH.Put(btree.U32U64Key(uint32(n.Hundred), uint64(n.ID)), nil); err != nil {
		return err
	}
	if err := d.idxM.Put(btree.U32U64Key(uint32(n.Million), uint64(n.ID)), nil); err != nil {
		return err
	}
	if content != nil {
		oid, err := d.heap.Put(content, objstore.InvalidOID)
		if err != nil {
			return err
		}
		return d.content.Put(key, btree.U64Key(uint64(oid)))
	}
	return nil
}

// CreateNode stores an interior node. Relational systems have no
// clustering hint; near is ignored.
func (d *DB) CreateNode(n hyper.Node, _ hyper.NodeID) error {
	return d.createRow(n, nil)
}

// CreateTextNode stores a TextNode row plus its out-of-line content.
func (d *DB) CreateTextNode(n hyper.Node, text string, _ hyper.NodeID) error {
	return d.createRow(n, []byte(text))
}

// CreateFormNode stores a FormNode row plus its out-of-line bitmap.
func (d *DB) CreateFormNode(n hyper.Node, bm hyper.Bitmap, _ hyper.NodeID) error {
	return d.createRow(n, hyper.EncodeBitmap(bm))
}

func (d *DB) mustExist(id hyper.NodeID) error {
	_, ok, err := d.node.Get(idKey(id))
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: node %d", hyper.ErrNotFound, id)
	}
	return nil
}

// AddChild inserts a CHILD row with the next sequence number and the
// CHILDINV row.
func (d *DB) AddChild(parent, child hyper.NodeID) error {
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.mustExist(parent); err != nil {
		return err
	}
	if err := d.mustExist(child); err != nil {
		return err
	}
	if _, ok, err := d.childInv.Get(idKey(child)); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("reldb: node %d already has a parent", child)
	}
	seq, err := nextSeq(d.child, parent)
	if err != nil {
		return err
	}
	if err := d.child.Put(btree.U64U32Key(uint64(parent), seq), u64Row(uint64(child))); err != nil {
		return err
	}
	return d.childInv.Put(idKey(child), u64Row(uint64(parent)))
}

// AddPart inserts PART and PARTINV rows.
func (d *DB) AddPart(whole, part hyper.NodeID) error {
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.mustExist(whole); err != nil {
		return err
	}
	if err := d.mustExist(part); err != nil {
		return err
	}
	seq, err := nextSeq(d.part, whole)
	if err != nil {
		return err
	}
	if err := d.part.Put(btree.U64U32Key(uint64(whole), seq), u64Row(uint64(part))); err != nil {
		return err
	}
	iseq, err := nextSeq(d.partInv, part)
	if err != nil {
		return err
	}
	return d.partInv.Put(btree.U64U32Key(uint64(part), iseq), u64Row(uint64(whole)))
}

// AddRef inserts REF and REFINV rows.
func (d *DB) AddRef(e hyper.Edge) error {
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.mustExist(e.From); err != nil {
		return err
	}
	if err := d.mustExist(e.To); err != nil {
		return err
	}
	seq, err := nextSeq(d.ref, e.From)
	if err != nil {
		return err
	}
	if err := d.ref.Put(btree.U64U32Key(uint64(e.From), seq), encodeRefRow(e.To, e.OffsetFrom, e.OffsetTo)); err != nil {
		return err
	}
	iseq, err := nextSeq(d.refInv, e.To)
	if err != nil {
		return err
	}
	return d.refInv.Put(btree.U64U32Key(uint64(e.To), iseq), encodeRefRow(e.From, e.OffsetFrom, e.OffsetTo))
}

// --- lookups ---

// Node selects the NODE row by primary key.
func (d *DB) Node(id hyper.NodeID) (hyper.Node, error) {
	row, ok, err := d.node.Get(idKey(id))
	if err != nil {
		return hyper.Node{}, err
	}
	if !ok {
		return hyper.Node{}, fmt.Errorf("%w: node %d", hyper.ErrNotFound, id)
	}
	return decodeNodeRow(id, row)
}

// Hundred projects one attribute from the NODE row.
func (d *DB) Hundred(id hyper.NodeID) (int32, error) {
	n, err := d.Node(id)
	if err != nil {
		return 0, err
	}
	return n.Hundred, nil
}

// SetHundred updates the NODE row and the hundred index.
func (d *DB) SetHundred(id hyper.NodeID, v int32) error {
	if err := d.writable(); err != nil {
		return err
	}
	n, err := d.Node(id)
	if err != nil {
		return err
	}
	if n.Hundred == v {
		return nil
	}
	if _, err := d.idxH.Delete(btree.U32U64Key(uint32(n.Hundred), uint64(id))); err != nil {
		return err
	}
	n.Hundred = v
	if err := d.node.Put(idKey(id), encodeNodeRow(n)); err != nil {
		return err
	}
	return d.idxH.Put(btree.U32U64Key(uint32(v), uint64(id)), nil)
}

// OIDOf: the relational mapping has no system object identifiers.
func (d *DB) OIDOf(hyper.NodeID) (hyper.OID, error) { return 0, hyper.ErrNoOIDs }

// HundredByOID is not applicable without OIDs.
func (d *DB) HundredByOID(hyper.OID) (int32, error) { return 0, hyper.ErrNoOIDs }

// RangeHundred scans the hundred index.
func (d *DB) RangeHundred(lo, hi int32) ([]hyper.NodeID, error) {
	return scanAttrIndex(d.idxH, lo, hi)
}

// RangeMillion scans the million index.
func (d *DB) RangeMillion(lo, hi int32) ([]hyper.NodeID, error) {
	return scanAttrIndex(d.idxM, lo, hi)
}

func scanAttrIndex(t *btree.Tree, lo, hi int32) ([]hyper.NodeID, error) {
	var out []hyper.NodeID
	err := t.Scan(btree.U32U64Key(uint32(lo), 0), btree.U32U64Key(uint32(hi)+1, 0),
		func(k, _ []byte) (bool, error) {
			_, id := btree.U32U64FromKey(k)
			out = append(out, hyper.NodeID(id))
			return true, nil
		})
	return out, err
}

// scanOwned collects the values of an ordered relationship table for
// one owner, in sequence order.
func (d *DB) scanOwned(t *btree.Tree, owner hyper.NodeID) ([]hyper.NodeID, error) {
	if err := d.mustExist(owner); err != nil {
		return nil, err
	}
	return d.scanOwnedRows(t, owner)
}

// scanOwnedRows is scanOwned without the owner existence check (batch
// reads verify existence separately, probing the NODE table once per
// distinct id).
func (d *DB) scanOwnedRows(t *btree.Tree, owner hyper.NodeID) ([]hyper.NodeID, error) {
	var out []hyper.NodeID
	err := t.Scan(btree.U64U32Key(uint64(owner), 0), btree.U64Key(uint64(owner)+1),
		func(_, v []byte) (bool, error) {
			out = append(out, hyper.NodeID(rowU64(v)))
			return true, nil
		})
	return out, err
}

// Children selects the CHILD rows for a parent, ordered by seq.
func (d *DB) Children(id hyper.NodeID) ([]hyper.NodeID, error) {
	return d.scanOwned(d.child, id)
}

// Parts selects the PART rows for a whole.
func (d *DB) Parts(id hyper.NodeID) ([]hyper.NodeID, error) {
	return d.scanOwned(d.part, id)
}

func (d *DB) scanEdges(t *btree.Tree, owner hyper.NodeID, outgoing bool) ([]hyper.Edge, error) {
	if err := d.mustExist(owner); err != nil {
		return nil, err
	}
	return d.scanEdgeRows(t, owner, outgoing)
}

// scanEdgeRows is scanEdges without the owner existence check.
func (d *DB) scanEdgeRows(t *btree.Tree, owner hyper.NodeID, outgoing bool) ([]hyper.Edge, error) {
	var out []hyper.Edge
	err := t.Scan(btree.U64U32Key(uint64(owner), 0), btree.U64Key(uint64(owner)+1),
		func(_, v []byte) (bool, error) {
			other, offFrom, offTo, err := decodeRefRow(v)
			if err != nil {
				return false, err
			}
			if outgoing {
				out = append(out, hyper.Edge{From: owner, To: other, OffsetFrom: offFrom, OffsetTo: offTo})
			} else {
				out = append(out, hyper.Edge{From: other, To: owner, OffsetFrom: offFrom, OffsetTo: offTo})
			}
			return true, nil
		})
	return out, err
}

// RefsTo selects the REF rows with fromId = id.
func (d *DB) RefsTo(id hyper.NodeID) ([]hyper.Edge, error) {
	return d.scanEdges(d.ref, id, true)
}

// Parent selects the CHILDINV row.
func (d *DB) Parent(id hyper.NodeID) (hyper.NodeID, bool, error) {
	if err := d.mustExist(id); err != nil {
		return 0, false, err
	}
	row, ok, err := d.childInv.Get(idKey(id))
	if err != nil || !ok {
		return 0, false, err
	}
	return hyper.NodeID(rowU64(row)), true, nil
}

// PartOf selects the PARTINV rows.
func (d *DB) PartOf(id hyper.NodeID) ([]hyper.NodeID, error) {
	return d.scanOwned(d.partInv, id)
}

// RefsFrom selects the REFINV rows with toId = id.
func (d *DB) RefsFrom(id hyper.NodeID) ([]hyper.Edge, error) {
	return d.scanEdges(d.refInv, id, false)
}

// ScanTen scans the NODE table's primary key range.
func (d *DB) ScanTen(first, last hyper.NodeID, visit func(hyper.NodeID, int32) bool) error {
	return d.node.Scan(idKey(first), btree.U64Key(uint64(last)+1), func(k, v []byte) (bool, error) {
		id := hyper.NodeID(btree.U64FromKey(k))
		n, err := decodeNodeRow(id, v)
		if err != nil {
			return false, err
		}
		return visit(id, n.Ten), nil
	})
}

// --- content ---

func (d *DB) contentBlob(id hyper.NodeID, want hyper.Kind) (objstore.OID, error) {
	n, err := d.Node(id)
	if err != nil {
		return 0, err
	}
	if n.Kind != want {
		return 0, fmt.Errorf("%w: node %d is %s", hyper.ErrWrongKind, id, n.Kind)
	}
	v, ok, err := d.content.Get(idKey(id))
	if err != nil {
		return 0, err
	}
	if !ok {
		return 0, fmt.Errorf("%w: content of node %d", hyper.ErrNotFound, id)
	}
	return objstore.OID(btree.U64FromKey(v)), nil
}

// Text selects a TextNode's out-of-line content.
func (d *DB) Text(id hyper.NodeID) (string, error) {
	oid, err := d.contentBlob(id, hyper.KindText)
	if err != nil {
		return "", err
	}
	data, err := d.heap.Get(oid)
	return string(data), err
}

// SetText replaces a TextNode's content.
func (d *DB) SetText(id hyper.NodeID, text string) error {
	if err := d.writable(); err != nil {
		return err
	}
	oid, err := d.contentBlob(id, hyper.KindText)
	if err != nil {
		return err
	}
	return d.heap.Update(oid, []byte(text))
}

// Form selects a FormNode's out-of-line bitmap.
func (d *DB) Form(id hyper.NodeID) (hyper.Bitmap, error) {
	oid, err := d.contentBlob(id, hyper.KindForm)
	if err != nil {
		return hyper.Bitmap{}, err
	}
	data, err := d.heap.Get(oid)
	if err != nil {
		return hyper.Bitmap{}, err
	}
	return hyper.DecodeBitmap(data)
}

// SetForm replaces a FormNode's bitmap.
func (d *DB) SetForm(id hyper.NodeID, bm hyper.Bitmap) error {
	if err := d.writable(); err != nil {
		return err
	}
	oid, err := d.contentBlob(id, hyper.KindForm)
	if err != nil {
		return err
	}
	return d.heap.Update(oid, hyper.EncodeBitmap(bm))
}

// --- blobs ---

func blobKey(key string) []byte { return append([]byte("b/"), key...) }

// PutBlob stores a named value in the heap.
func (d *DB) PutBlob(key string, data []byte) error {
	if err := d.writable(); err != nil {
		return err
	}
	if v, ok, err := d.blobs.Get(blobKey(key)); err != nil {
		return err
	} else if ok {
		return d.heap.Update(objstore.OID(btree.U64FromKey(v)), data)
	}
	oid, err := d.heap.Put(data, objstore.InvalidOID)
	if err != nil {
		return err
	}
	return d.blobs.Put(blobKey(key), btree.U64Key(uint64(oid)))
}

// GetBlob retrieves a named value.
func (d *DB) GetBlob(key string) ([]byte, error) {
	v, ok, err := d.blobs.Get(blobKey(key))
	if err != nil {
		return nil, err
	}
	if !ok {
		return nil, fmt.Errorf("%w: blob %q", hyper.ErrNotFound, key)
	}
	return d.heap.Get(objstore.OID(btree.U64FromKey(v)))
}

// DeleteBlob removes a named value (idempotent).
func (d *DB) DeleteBlob(key string) error {
	if err := d.writable(); err != nil {
		return err
	}
	v, ok, err := d.blobs.Get(blobKey(key))
	if err != nil || !ok {
		return err
	}
	if err := d.heap.Delete(objstore.OID(btree.U64FromKey(v))); err != nil {
		return err
	}
	_, err = d.blobs.Delete(blobKey(key))
	return err
}

// --- lifecycle ---

// Commit makes all changes durable through the WAL.
func (d *DB) Commit() error { return d.st.Commit() }

// DropCaches empties the buffer pool.
func (d *DB) DropCaches() error {
	if err := d.st.Commit(); err != nil {
		return err
	}
	return d.st.DropCache()
}

// Abort discards all uncommitted changes (rollback).
func (d *DB) Abort() error { return d.st.Abort() }

// Close commits, checkpoints and closes the store.
func (d *DB) Close() error { return d.st.Close() }

// CacheStats reports buffer-pool and disk counters.
func (d *DB) CacheStats() (hits, misses, diskReads uint64) {
	return d.st.CacheStats()
}

// Snapshot returns a read-only database pinned to the newest committed
// version of the underlying store: the same relational mapping, opened
// over a store snapshot view, so long-running read closures see a
// stable state while commits proceed on the parent.
func (d *DB) Snapshot() (hyper.DB, error) {
	sv, ok := d.st.(interface {
		Snapshot() (*store.SnapshotView, error)
	})
	if !ok {
		return nil, hyper.ErrNoSnapshots
	}
	view, err := sv.Snapshot()
	if err != nil {
		return nil, err
	}
	return New(view)
}

// CommitStats reports the underlying store's transaction counters.
func (d *DB) CommitStats() hyper.CommitStats {
	if cs, ok := d.st.(interface{ CommitStats() store.CommitStats }); ok {
		s := cs.CommitStats()
		return hyper.CommitStats{
			Commits:      s.Commits,
			Flushes:      s.Flushes,
			GroupCommits: s.GroupCommits,
			GroupedTxns:  s.GroupedTxns,
			MaxBatch:     s.MaxBatch,
		}
	}
	return hyper.CommitStats{}
}

// --- dynamic schema (R4): same catalog layout as the oodb backend ---

func classKey(name string) []byte { return append([]byte("c/"), name...) }

func attrKey(k hyper.Kind, a string) []byte {
	return append([]byte(fmt.Sprintf("a/%d/", k)), a...)
}

func uattrKey(id hyper.NodeID, a string) []byte {
	return append(btree.U64Key(uint64(id)), append([]byte("/u/"), a...)...)
}

// AddClass registers a new node class: in relational terms, recording a
// new subtype in the catalog (a new table would be created lazily).
func (d *DB) AddClass(name string) (hyper.Kind, error) {
	if err := d.writable(); err != nil {
		return 0, err
	}
	if _, ok, err := d.cat.Get(classKey(name)); err != nil {
		return 0, err
	} else if ok {
		return 0, fmt.Errorf("reldb: class %q already exists", name)
	}
	next := hyper.KindUser
	err := d.cat.Scan([]byte("c/"), btree.PrefixEnd([]byte("c/")), func(_, _ []byte) (bool, error) {
		next++
		return true, nil
	})
	if err != nil {
		return 0, err
	}
	if err := d.cat.Put(classKey(name), []byte{byte(next)}); err != nil {
		return 0, err
	}
	return next, nil
}

// Classes lists the registered dynamic classes.
func (d *DB) Classes() (map[string]hyper.Kind, error) {
	out := map[string]hyper.Kind{}
	err := d.cat.Scan([]byte("c/"), btree.PrefixEnd([]byte("c/")), func(k, v []byte) (bool, error) {
		out[string(k[2:])] = hyper.Kind(v[0])
		return true, nil
	})
	return out, err
}

// AddAttribute records an ALTER TABLE ADD COLUMN in the catalog.
func (d *DB) AddAttribute(class hyper.Kind, attr string) error {
	if err := d.writable(); err != nil {
		return err
	}
	key := attrKey(class, attr)
	if _, ok, err := d.cat.Get(key); err != nil {
		return err
	} else if ok {
		return fmt.Errorf("reldb: attribute %q already declared", attr)
	}
	return d.cat.Put(key, nil)
}

// SetAttr stores a dynamic attribute value.
func (d *DB) SetAttr(id hyper.NodeID, attr string, v int64) error {
	if err := d.writable(); err != nil {
		return err
	}
	if err := d.mustExist(id); err != nil {
		return err
	}
	return d.cat.Put(uattrKey(id, attr), btree.U64Key(uint64(v)))
}

// Attr reads a dynamic attribute value.
func (d *DB) Attr(id hyper.NodeID, attr string) (int64, bool, error) {
	if err := d.mustExist(id); err != nil {
		return 0, false, err
	}
	v, ok, err := d.cat.Get(uattrKey(id, attr))
	if err != nil || !ok {
		return 0, false, err
	}
	return int64(btree.U64FromKey(v)), true, nil
}
