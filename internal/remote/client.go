package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/store"
)

// Client is the workstation side of the page-server architecture. It
// satisfies the backends' Space interface: pages are cached in a local
// buffer pool, misses are fetched from the server, and Commit ships
// the transaction's read set (for optimistic validation) and write set
// to the server atomically.
//
// The transport is multiplexed: every request carries a 64-bit ID, so
// many requests ride one connection concurrently and responses return
// in whatever order the server finishes them. Requests spread over a
// small connection pool (ClientOptions.Conns); each pooled connection
// runs a demultiplexing core (see muxConn) with one writer and one
// reader goroutine. Session state — the page cache, version table and
// read set — stays under one mutex, but that mutex is released across
// page-fetch round trips, so concurrent Gets from many goroutines
// pipeline over the pool instead of queueing behind each other.
//
// The client survives a flaky network. Transport failures on
// idempotent requests (page fetches, roots, stats) redial with capped
// exponential backoff and resend; a failure with a commit in flight is
// resolved through the commit token (see Commit) so a transaction is
// applied at most once. A dead connection drains: every request in
// flight on it fails with the same cause and retries (or surfaces)
// independently. Reconnecting invalidates the session's cached clean
// pages — they may be stale by the time the connection is back — while
// dirty pages stay resident: under the no-steal policy they exist
// nowhere else, and the read set still guards their validity at commit
// time.
type Client struct {
	// mu guards session state: the pool, version table, read set,
	// transaction bookkeeping and the root directory. It is never held
	// across conn I/O on the fetch path — fetches run on the wire
	// layer below and re-acquire mu to install their results.
	mu       sync.Mutex
	pool     *buffer.Pool
	versions map[page.ID]uint64 // version of each cached page as fetched
	readSet  map[page.ID]uint64 // pages read since the last commit
	frees    []page.ID

	addr string
	opts ClientOptions

	rngMu sync.Mutex
	rng   *rand.Rand // backoff jitter and commit tokens

	closed   atomic.Bool
	closedCh chan struct{}

	// slots is the connection pool; next is the round-robin cursor.
	slots []*connSlot
	next  atomic.Uint64

	// sessionGen is bumped by every successful redial. The wire layer
	// cannot take c.mu, so session invalidation is reconciled lazily:
	// ops compare seenGen (under mu) against sessionGen and drop clean
	// cached state when a reconnect happened since they last looked.
	sessionGen atomic.Uint64
	seenGen    uint64 // guarded by mu

	roots      [store.NumRoots]page.ID
	rootsVer   uint64
	rootsRead  bool
	rootsDirty map[int]page.ID

	// snapSeq is the server commit sequence the session's caches are
	// known-current as of: every cached page version reflects the state
	// at that sequence (or newer, fetched while the sequence stood).
	// Sent with every commit so the server can skip per-page read-set
	// validation when nothing has committed since. Established by the
	// roots fetch (which only runs on an empty cache) and advanced by a
	// commit acknowledgement only when this session's transaction was
	// the sole one applied since (ack seq == snapSeq+1) — a bigger jump
	// means other transactions landed, possibly touching pages this
	// session still caches, so the fast path is disabled (zero) until
	// the next cache reset. Guarded by mu.
	snapSeq uint64

	// batchOK clears when the server refuses opGetPages; the client
	// then degrades to per-page fetches for the rest of its life.
	batchOK atomic.Bool

	hits, misses        uint64        // guarded by mu
	commitsOK           atomic.Uint64 // transactions acknowledged by the server
	conflicts           atomic.Uint64 // commits aborted by optimistic validation
	fetches             atomic.Uint64
	frames, batchFrames atomic.Uint64
	reconnects          atomic.Uint64
	retries             atomic.Uint64
	downgrades          atomic.Uint64
	commitChecks        atomic.Uint64
	commitResends       atomic.Uint64
	commitUnknowns      atomic.Uint64
	corruptRefetches    atomic.Uint64

	// Pipelining stats (see InflightStats).
	curInflight  atomic.Int64
	peakInflight atomic.Int64
	queueWaitNs  atomic.Int64
	unknownResps atomic.Uint64
	histMu       sync.Mutex
	hist         map[byte]*opHist
}

// connSlot is one pooled connection endpoint. Its mutex guards only
// the muxConn pointer — dialing happens outside it, and replacing a
// dead connection is effectively single-flight: racing redials detect
// a freshly installed live connection and adopt it instead of
// stampeding the server.
type connSlot struct {
	mu sync.Mutex
	mc *muxConn
}

// ClientOptions configure a workstation client.
type ClientOptions struct {
	// PoolPages is the size of the workstation page cache (default
	// 1024 pages = 4 MiB).
	PoolPages int
	// Conns is the size of the connection pool requests are spread
	// over (default 1). All connections are dialed up front.
	Conns int
	// MaxInflight caps concurrently outstanding requests per pooled
	// connection (0 = unlimited). Conns=1 with MaxInflight=1 restores
	// the strict one-request-per-round-trip discipline of the
	// pre-multiplexed protocol — the E18 baseline.
	MaxInflight int
	// RequestTimeout bounds one request/response round trip. A request
	// that exceeds it fails like any other transport error (and is
	// retried if idempotent); the connection it was riding is retired
	// and every other request in flight on it fails and recovers too.
	// Zero means no deadline.
	RequestTimeout time.Duration
	// RetryLimit is how many redial-and-resend attempts a failed
	// request gets before its transport error surfaces (default 8;
	// negative disables retries entirely).
	RetryLimit int
	// BackoffBase and BackoffMax shape the capped exponential redial
	// backoff (defaults 2ms and 250ms). Each wait is drawn uniformly
	// from (0, cap] — full jitter, so a herd of reconnecting clients
	// spreads out.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Dialer overrides how connections are made (tests route through
	// fault injectors). Default: net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolPages <= 0 {
		o.PoolPages = 1024
	}
	if o.Conns <= 0 {
		o.Conns = 1
	}
	switch {
	case o.RetryLimit == 0:
		o.RetryLimit = 8
	case o.RetryLimit < 0:
		o.RetryLimit = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// RetryStats are the client's fault-tolerance counters.
type RetryStats struct {
	Reconnects     uint64 // connections re-established after a transport failure
	Retries        uint64 // idempotent requests resent after reconnecting
	Downgrades     uint64 // batched fetches degraded to per-page fetches
	CommitChecks   uint64 // commit-token probes after a mid-commit disconnect
	CommitResends  uint64 // commits resent after the server confirmed non-application
	CommitUnknowns uint64 // commits whose outcome could not be re-verified
	// CorruptRefetches counts page images that failed validation on
	// arrival and were fetched again — transit corruption the checksum
	// caught before the bytes could enter the cache.
	CorruptRefetches uint64
}

// Dial connects to a page server — the whole connection pool, up
// front — and loads the root directory.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	c := &Client{
		addr:       addr,
		opts:       opts,
		rng:        rand.New(rand.NewSource(rand.Int63())),
		closedCh:   make(chan struct{}),
		pool:       buffer.New(opts.PoolPages),
		versions:   make(map[page.ID]uint64),
		readSet:    make(map[page.ID]uint64),
		rootsDirty: make(map[int]page.ID),
		hist:       make(map[byte]*opHist),
	}
	c.batchOK.Store(true)
	for i := 0; i < opts.Conns; i++ {
		conn, err := opts.Dialer(addr)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
		}
		c.slots = append(c.slots, &connSlot{mc: newMuxConn(c, conn)})
	}
	if err := func() error {
		c.mu.Lock()
		defer c.mu.Unlock()
		return c.fetchRoots() //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	}(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// errNotConnected marks the window between a dropped connection and
// the redial; it is transport-class (retriable).
var errNotConnected = errors.New("remote: not connected")

// transient reports whether err is a transport-class failure — the
// request may never have reached the server, so reconnecting and
// retrying can help. Definite outcomes (server replies, conflicts,
// corruption reports, Close) are final: a statusCorrupt answer means
// the page's stored image is damaged on the server's disk, and
// resending the fetch would read the same bad bytes.
func transient(err error) bool {
	if err == nil || errors.Is(err, ErrConflict) || errors.Is(err, ErrClosed) {
		return false
	}
	var ce *pager.ErrCorruptPage
	if errors.As(err, &ce) {
		return false
	}
	var se *ServerError
	return !errors.As(err, &se)
}

// idempotentOp reports whether a request may be resent blindly after a
// transport failure. Fetches and probes are read-only. Alloc is
// retriable too: a lost Alloc response can at worst leave an
// unreferenced page allocated server-side (reclaimable by GC), never
// an inconsistency. Prepare and decide are token-guarded on the server
// (a resent prepare is a no-op vote, a resent decide a duplicate
// acknowledgement), so they resend safely too. Commits are the
// exception — they go through the token-resolution path instead.
func idempotentOp(op byte) bool {
	switch op {
	case opGetPage, opGetPages, opRoots, opPing, opStats, opAlloc,
		opCommitCheck, opPrepare, opDecide, opRouteTable:
		return true
	}
	return false
}

// pickSlot returns the pool slot for the next request (round-robin).
func (c *Client) pickSlot() *connSlot {
	if len(c.slots) == 1 {
		return c.slots[0]
	}
	return c.slots[int(c.next.Add(1))%len(c.slots)]
}

// liveMux returns the slot's live demux core, errNotConnected when the
// slot needs a redial, or ErrClosed after Close.
func (c *Client) liveMux(s *connSlot) (*muxConn, error) {
	if c.closed.Load() {
		return nil, ErrClosed
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.mc == nil || s.mc.isDead() {
		return nil, errNotConnected
	}
	return s.mc, nil
}

// doOnce performs one request attempt on the slot's current
// connection, recording in-flight depth and per-opcode latency.
// payload is opcode + body.
func (c *Client) doOnce(s *connSlot, payload []byte) ([]byte, error) {
	m, err := c.liveMux(s)
	if err != nil {
		return nil, err
	}
	c.frames.Add(1)
	depth := c.curInflight.Add(1)
	for {
		p := c.peakInflight.Load()
		if depth <= p || c.peakInflight.CompareAndSwap(p, depth) {
			break
		}
	}
	start := time.Now()
	resp, err := m.do(payload, c.opts.RequestTimeout)
	c.curInflight.Add(-1)
	c.recordOp(payload[0], time.Since(start))
	return resp, err
}

// call performs one request round trip over the pool. Transport
// failures on idempotent requests redial with backoff and resend the
// same payload; non-idempotent requests surface the failure to their
// caller (Commit resolves it through the commit token).
func (c *Client) call(payload []byte) ([]byte, error) {
	s := c.pickSlot()
	resp, err := c.doOnce(s, payload)
	if !transient(err) || !idempotentOp(payload[0]) {
		return resp, err
	}
	return c.retryCall(s, payload, err)
}

// retryCall redials the slot and resends an idempotent payload until
// it gets a definite answer or the retry budget runs out.
func (c *Client) retryCall(s *connSlot, payload []byte, first error) ([]byte, error) {
	lastErr := first
	for attempt := 0; attempt < c.opts.RetryLimit; attempt++ {
		if err := c.redial(s, attempt); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		c.retries.Add(1)
		resp, err := c.doOnce(s, payload)
		if !transient(err) {
			return resp, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("remote: request failed after %d attempts: %w", c.opts.RetryLimit+1, lastErr)
}

// redial re-establishes one pool slot: capped exponential backoff with
// full jitter, then a fresh connection. Concurrent requests that raced
// into the same dead slot adopt whichever dial lands first instead of
// each opening a connection. A successful dial bumps the session
// generation; session state is invalidated lazily (syncSessionLocked)
// because the wire layer never takes c.mu.
func (c *Client) redial(s *connSlot, attempt int) error {
	if err := c.backoff(attempt); err != nil {
		return err
	}
	s.mu.Lock()
	prev := s.mc
	s.mu.Unlock()
	if prev != nil && !prev.isDead() {
		return nil // another request already redialed while we backed off
	}
	conn, err := c.opts.Dialer(c.addr)
	if err != nil {
		return fmt.Errorf("remote: redial %s: %w", c.addr, err)
	}
	fresh := newMuxConn(c, conn)
	s.mu.Lock()
	if c.closed.Load() {
		s.mu.Unlock()
		fresh.kill(ErrClosed)
		return ErrClosed
	}
	if s.mc != prev && s.mc != nil && !s.mc.isDead() {
		s.mu.Unlock()
		fresh.kill(errNotConnected) // lost the dial race; use the winner's connection
		return nil
	}
	s.mc = fresh
	s.mu.Unlock()
	c.reconnects.Add(1)
	c.sessionGen.Add(1)
	return nil
}

// backoff sleeps before redial attempt n (the first attempt is
// immediate), or returns early when the client closes.
func (c *Client) backoff(attempt int) error {
	if attempt == 0 {
		return nil
	}
	cap := c.opts.BackoffBase << (attempt - 1)
	if cap > c.opts.BackoffMax || cap <= 0 {
		cap = c.opts.BackoffMax
	}
	c.rngMu.Lock()
	d := time.Duration(1 + c.rng.Int63n(int64(cap)))
	c.rngMu.Unlock()
	select {
	case <-time.After(d):
		return nil
	case <-c.closedCh:
		return ErrClosed
	}
}

// syncSessionLocked applies any reconnect-induced invalidation that
// happened since session state was last touched. Ops call it on entry
// and again after any round trip made while holding c.mu, so cached
// clean pages never outlive the connection generation that fetched
// them by more than one reconciliation point.
func (c *Client) syncSessionLocked() {
	gen := c.sessionGen.Load()
	if gen != c.seenGen {
		c.seenGen = gen
		c.invalidateSessionLocked()
	}
}

// invalidateSessionLocked discards session state a reconnect makes
// untrustworthy: clean cached pages (the server may have moved on
// while we were gone) and their version records. Dirty frames and the
// read set survive — the dirty images exist nowhere else under
// no-steal, and the read set is the transaction's evidence, which
// optimistic validation checks at commit regardless of how often the
// connection bounced.
func (c *Client) invalidateSessionLocked() {
	c.pool.DropClean()
	keep := make(map[page.ID]uint64)
	for _, id := range c.pool.ResidentIDs() {
		if v, ok := c.versions[id]; ok {
			keep[id] = v
		}
	}
	c.versions = keep
}

// conflictResetLocked discards the failed transaction — local caches
// are stale — and refreshes the root directory.
func (c *Client) conflictResetLocked() error {
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots()
}

func (c *Client) fetchRoots() error {
	resp, err := c.call([]byte{opRoots})
	if err != nil {
		return err
	}
	if len(resp) != 16+8*store.NumRoots {
		return errors.New("remote: bad roots response")
	}
	c.syncSessionLocked()
	c.rootsVer = binary.LittleEndian.Uint64(resp)
	// Every fetchRoots call site runs on a freshly emptied cache, so the
	// server's commit sequence is a sound snapshot for the session.
	c.snapSeq = binary.LittleEndian.Uint64(resp[8:])
	for i := 0; i < store.NumRoots; i++ {
		c.roots[i] = page.ID(binary.LittleEndian.Uint64(resp[16+8*i:]))
	}
	return nil
}

// handle implements store.Handle over the client pool.
type handle struct {
	c *Client
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.c.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.c.pool.Release(h.f) }

// fetchPage fetches one page image from the server. It takes no locks
// of its own, so any number of fetches can be in flight concurrently.
//
// Every received image is validated before it can enter the cache. The
// server seals what it sends, so a failure here means the bytes were
// damaged between the server's memory and ours — a fault the protocol's
// length-checks cannot see — and a refetch reads the server's (good)
// copy again. Refetches share the retry budget; if the image never
// arrives intact, the typed corruption error surfaces with the page
// pinned, exactly like a local checksum failure.
func (c *Client) fetchPage(id page.ID) (uint64, *page.Page, error) {
	req := make([]byte, 0, 9)
	req = append(req, opGetPage)
	req = binary.LittleEndian.AppendUint64(req, uint64(id))
	var lastDetail string
	for attempt := 0; ; attempt++ {
		resp, err := c.call(req)
		if err != nil {
			return 0, nil, err
		}
		if len(resp) != 8+page.Size {
			return 0, nil, errors.New("remote: bad GetPage response")
		}
		img := &page.Page{}
		copy(img.Bytes(), resp[8:])
		if verr := img.Validate(); verr != nil {
			lastDetail = verr.Error()
			if attempt < c.opts.RetryLimit {
				c.corruptRefetches.Add(1)
				continue
			}
			return 0, nil, &pager.ErrCorruptPage{
				ID:     id,
				Detail: "image corrupted in transit: " + lastDetail,
			}
		}
		c.fetches.Add(1)
		return binary.LittleEndian.Uint64(resp), img, nil
	}
}

// checkReadVersionLocked guards snapshot consistency: if the
// transaction already read this page at a different version (the frame
// has since been evicted or invalidated and the server moved on), any
// commit would mix two snapshots while validating only the newer one.
// Surface the conflict immediately, exactly like a commit-time abort.
func (c *Client) checkReadVersionLocked(id page.ID, ver uint64) error {
	prev, ok := c.readSet[id]
	if !ok || prev == ver {
		return nil
	}
	if err := c.conflictResetLocked(); err != nil {
		return err
	}
	return ErrConflict
}

// Get pins the page, fetching it from the server on a cache miss, and
// records it in the transaction's read set. The session mutex is
// released across the server round trip, so concurrent Gets pipeline
// over the connection pool.
func (c *Client) Get(id page.ID) (store.Handle, error) {
	c.mu.Lock()
	c.syncSessionLocked()
	if f := c.pool.Get(id); f != nil {
		c.hits++
		c.readSet[id] = c.versions[id]
		c.mu.Unlock()
		return &handle{c, f}, nil
	}
	c.misses++
	c.mu.Unlock()

	ver, img, err := c.fetchPage(id)
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncSessionLocked()
	if f := c.pool.Get(id); f != nil {
		// A concurrent Get or prefetch installed it while we fetched.
		c.readSet[id] = c.versions[id]
		return &handle{c, f}, nil
	}
	if err := c.checkReadVersionLocked(id, ver); err != nil { //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
		return nil, err
	}
	f := c.pool.Insert(id, img)
	c.versions[id] = ver
	c.readSet[id] = ver
	return &handle{c, f}, nil
}

// ReadPage fetches one page image straight from the server, bypassing
// the workstation cache, the version table and the read set. It is the
// measurement primitive for wire-level throughput experiments: every
// call is a real server round trip, so op/s curves measure the
// transport, not the cache.
func (c *Client) ReadPage(id page.ID) (uint64, *page.Page, error) {
	return c.fetchPage(id)
}

// missingOf dedups ids and drops the ones already resident, under the
// session mutex.
func (c *Client) missingOf(ids []page.ID) []page.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncSessionLocked()
	var missing []page.ID
	var seen map[page.ID]bool
	for _, id := range ids {
		if f := c.pool.Get(id); f != nil {
			c.pool.Release(f)
			continue
		}
		if seen == nil {
			seen = make(map[page.ID]bool, len(ids))
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		missing = append(missing, id)
	}
	return missing
}

// Prefetch warms the workstation cache with every listed page that is
// not already resident, fetching all of them from the server in a
// single opGetPages round trip (chunked only past maxBatchPages).
// Prefetched pages enter the pool and the version table but not the
// read set: optimistic validation covers exactly the pages the
// transaction actually reads, and a prefetched page only joins the
// read set when a later Get touches it.
func (c *Client) Prefetch(ids []page.ID) error {
	missing := c.missingOf(ids)
	for len(missing) > 0 {
		n := len(missing)
		if n > maxBatchPages {
			n = maxBatchPages
		}
		if err := c.fetchPages(missing[:n], true); err != nil {
			return err
		}
		missing = missing[n:]
	}
	return nil
}

// PrefetchAsync starts warming the cache with the listed pages and
// returns a wait function reporting the fetch's error. The fetch
// overlaps with whatever the caller does next — closure traversals
// kick off the next frontier's opGetPages before computing on the
// current one. Pages install as responses arrive; a page whose fetched
// version contradicts the transaction's read set is skipped (never
// installed stale), leaving the conflict for the synchronous path to
// surface. The wait function must be called before the transaction
// commits or aborts; calling it more than once is allowed.
func (c *Client) PrefetchAsync(ids []page.ID) (wait func() error) {
	missing := c.missingOf(ids)
	if len(missing) == 0 {
		return func() error { return nil }
	}
	done := make(chan error, 1)
	go func() {
		var err error
		rest := missing
		for len(rest) > 0 && err == nil {
			n := len(rest)
			if n > maxBatchPages {
				n = maxBatchPages
			}
			err = c.fetchPages(rest[:n], false)
			rest = rest[n:]
		}
		done <- err
	}()
	var once sync.Once
	var err error
	return func() error {
		once.Do(func() { err = <-done })
		return err
	}
}

// fetchPages brings one chunk of pages into the pool, batched when the
// server supports it. When the server refuses opGetPages (an older
// server, or a policy rejection) the client records the downgrade and
// degrades gracefully to per-page fetches — slower, but the traversal
// completes. strict propagates to installFetchedLocked.
func (c *Client) fetchPages(ids []page.ID, strict bool) error {
	if c.batchOK.Load() {
		err := c.fetchPageBatch(ids, strict)
		var se *ServerError
		var ce *pager.ErrCorruptPage
		switch {
		case err == nil:
			return nil
		case errors.As(err, &ce):
			// One corrupt item poisons a batch response (the server
			// fails the whole frame, and a transit fault fails our
			// validation of it). Degrade this call to per-page fetches —
			// refetching the damaged page alone, installing the rest —
			// without writing off batching for the connection's life.
			c.downgrades.Add(1)
		case errors.As(err, &se):
			c.batchOK.Store(false)
			c.downgrades.Add(1)
		default:
			return err // transport retries exhausted
		}
	}
	for _, id := range ids {
		c.mu.Lock()
		if f := c.pool.Get(id); f != nil {
			c.pool.Release(f)
			c.mu.Unlock()
			continue
		}
		c.mu.Unlock()
		ver, img, err := c.fetchPage(id)
		if err != nil {
			return err
		}
		c.mu.Lock()
		err = c.installFetchedLocked(id, ver, img, strict) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
		c.mu.Unlock()
		if err != nil {
			return err
		}
	}
	return nil
}

// fetchPageBatch requests one chunk of pages in a single frame and
// installs them into the pool.
func (c *Client) fetchPageBatch(ids []page.ID, strict bool) error {
	req := make([]byte, 0, 5+8*len(ids))
	req = append(req, opGetPages)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(ids)))
	for _, id := range ids {
		req = binary.LittleEndian.AppendUint64(req, uint64(id))
	}
	c.batchFrames.Add(1)
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	if len(resp) != len(ids)*(8+page.Size) {
		return errors.New("remote: bad GetPages response")
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	off := 0
	for _, id := range ids {
		ver := binary.LittleEndian.Uint64(resp[off:])
		img := &page.Page{}
		copy(img.Bytes(), resp[off+8:off+8+page.Size])
		off += 8 + page.Size
		if verr := img.Validate(); verr != nil {
			// One damaged item fails the whole batch with the typed
			// error; fetchPages degrades to per-page fetches, which
			// refetch this page alone and install the rest unharmed.
			return &pager.ErrCorruptPage{
				ID:     id,
				Detail: "image corrupted in transit: " + verr.Error(),
			}
		}
		c.fetches.Add(1)
		if err := c.installFetchedLocked(id, ver, img, strict); err != nil { //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
			return err
		}
	}
	return nil
}

// installFetchedLocked installs one fetched page under c.mu. In strict
// mode a read-set version mismatch surfaces as ErrConflict (the
// synchronous prefetch path, same contract as Get); in async mode the
// page is simply not installed — a background prefetch must never turn
// the cache stale or raise a conflict nobody is positioned to handle.
func (c *Client) installFetchedLocked(id page.ID, ver uint64, img *page.Page, strict bool) error {
	c.syncSessionLocked()
	if f := c.pool.Get(id); f != nil {
		c.pool.Release(f) // already resident (Insert would refuse a duplicate)
		return nil
	}
	if prev, ok := c.readSet[id]; ok && prev != ver {
		if !strict {
			return nil
		}
		if err := c.conflictResetLocked(); err != nil {
			return err
		}
		return ErrConflict
	}
	c.pool.Release(c.pool.Insert(id, img))
	c.versions[id] = ver
	return nil
}

// FrameStats reports how many request frames the client has sent in
// total (retries included) and how many of them were batched page
// fetches (opGetPages).
func (c *Client) FrameStats() (total, batched uint64) {
	return c.frames.Load(), c.batchFrames.Load()
}

// RetryStats reports the client's fault-tolerance counters.
func (c *Client) RetryStats() RetryStats {
	return RetryStats{
		Reconnects:       c.reconnects.Load(),
		Retries:          c.retries.Load(),
		Downgrades:       c.downgrades.Load(),
		CommitChecks:     c.commitChecks.Load(),
		CommitResends:    c.commitResends.Load(),
		CommitUnknowns:   c.commitUnknowns.Load(),
		CorruptRefetches: c.corruptRefetches.Load(),
	}
}

// Alloc asks the server for a fresh page and materializes it dirty in
// the local cache; its contents travel with the next Commit.
func (c *Client) Alloc(t page.Type) (page.ID, store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call([]byte{opAlloc, byte(t)}) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	if err != nil {
		return page.Invalid, nil, err
	}
	if len(resp) != 16 {
		return page.Invalid, nil, errors.New("remote: bad Alloc response")
	}
	c.syncSessionLocked()
	id := page.ID(binary.LittleEndian.Uint64(resp))
	img := page.New(t)
	f := c.pool.Insert(id, img)
	c.pool.MarkDirty(f)
	c.versions[id] = binary.LittleEndian.Uint64(resp[8:])
	return id, &handle{c, f}, nil
}

// Free queues the page for release at the next Commit.
func (c *Client) Free(id page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Forget(id)
	c.frees = append(c.frees, id)
	return nil
}

// Root reads a root slot from the cached root directory.
func (c *Client) Root(slot int) page.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rootsRead = true
	return c.roots[slot]
}

// SetRoot updates a root slot; the change ships with the next Commit.
func (c *Client) SetRoot(slot int, id page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots[slot] = id
	c.rootsDirty[slot] = id
}

// newCommitToken draws a fresh nonzero commit token.
func (c *Client) newCommitToken() uint64 {
	c.rngMu.Lock()
	defer c.rngMu.Unlock()
	for {
		if tok := c.rng.Uint64(); tok != 0 {
			return tok
		}
	}
}

// buildCommitReqLocked assembles the session's transaction — read set,
// sealed write set, root updates, frees — into a commit request
// carrying the given token. Shared by the single-server commit and the
// cluster's per-shard prepare, so the two paths cannot drift.
func (c *Client) buildCommitReqLocked(token uint64) *commitReq {
	req := &commitReq{token: token, snapshot: c.snapSeq}
	for id, ver := range c.readSet {
		req.reads = append(req.reads, readEntry{id, ver})
	}
	if c.rootsRead || len(c.rootsDirty) > 0 {
		req.reads = append(req.reads, readEntry{rootsVersionKey, c.rootsVer})
	}
	for _, f := range c.pool.DirtyFrames() {
		f.Page.UpdateChecksum()
		req.writes = append(req.writes, writeEntry{f.ID, f.Page.Bytes()})
	}
	for slot, id := range c.rootsDirty {
		req.roots = append(req.roots, rootEntry{slot, id})
	}
	req.frees = c.frees
	return req
}

// txnState reports the session's transaction footprint: whether it has
// read anything (pages or roots) and whether it holds uncommitted
// changes. The cluster commit path uses it to pick participants and a
// coordinator.
func (c *Client) txnState() (reads, writes bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	reads = len(c.readSet) > 0 || c.rootsRead
	writes = len(c.pool.DirtyFrames()) > 0 || len(c.rootsDirty) > 0 || len(c.frees) > 0
	return reads, writes
}

// CommitCheck asks the server what became of a commit token: one of
// checkCommitted, checkAborted or checkUnknown. Exported for the
// in-doubt resolver on a peer shard, which polls a transaction's
// coordinator through an ordinary client.
func (c *Client) CommitCheck(token uint64) (byte, error) {
	c.commitChecks.Add(1)
	resp, err := c.call(appendCommitCheck(make([]byte, 0, 9), token))
	if err != nil {
		return checkUnknown, err
	}
	if len(resp) != 1 {
		return checkUnknown, errors.New("remote: bad CommitCheck response")
	}
	return resp[0], nil
}

// RouteTable fetches the server's cluster routing table: the table
// epoch and the shard addresses in shard-ID order. A standalone server
// answers epoch 0 with no shards.
func (c *Client) RouteTable() (epoch uint64, addrs []string, err error) {
	resp, err := c.call([]byte{opRouteTable})
	if err != nil {
		return 0, nil, err
	}
	return decodeRouteTable(resp)
}

// prepareShard ships the session's transaction as a two-phase-commit
// yes-vote carrying the cluster-wide token. Nothing is applied and the
// local dirty state is retained: the transaction finishes only through
// decideShard. A conflict vote surfaces as ErrConflict without
// resetting local caches — the cluster commit path aborts every shard
// first and resets each session exactly once.
func (c *Client) prepareShard(token uint64) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncSessionLocked()
	payload := encodePrepare(c.buildCommitReqLocked(token))
	_, err := c.call(payload) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	return err
}

// decideShard delivers the transaction outcome to a prepared shard.
// Commit performs the same success bookkeeping as a single-shard
// Commit (version advances, snapshot tracking, cache stays warm);
// abort discards the transaction and refreshes the session, exactly
// like a conflict.
func (c *Client) decideShard(token uint64, commit bool) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	payload := appendDecide(make([]byte, 0, 10), token, commit)
	resp, err := c.call(payload) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	c.syncSessionLocked()
	if !commit {
		c.conflicts.Add(1)
		if rerr := c.conflictResetLocked(); rerr != nil { //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
			return rerr
		}
		return err
	}
	if err != nil {
		return err
	}
	for _, f := range c.pool.DirtyFrames() {
		c.versions[f.ID]++
	}
	if len(c.rootsDirty) > 0 {
		c.rootsVer++
	}
	if len(resp) == 8 && c.snapSeq != 0 && binary.LittleEndian.Uint64(resp) == c.snapSeq+1 {
		c.snapSeq++
	} else {
		c.snapSeq = 0
	}
	c.commitsOK.Add(1)
	c.pool.MarkAllClean()
	c.resetTxnLocked()
	return nil
}

// resetSession discards the session's transaction and cached pages
// and refreshes the root directory — the cluster commit path's cleanup
// for a shard whose decision was delivered out of band (by a resolver)
// or not at all.
func (c *Client) resetSession() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conflictResetLocked() //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
}

// Commit ships the transaction to the server. On ErrConflict the local
// caches are already discarded and the root directory refreshed; the
// caller re-runs its transaction.
//
// Commits are never blindly retried. Each carries a unique token the
// server remembers; if the connection dies with the commit in flight,
// the client reconnects and asks whether the token was applied. Only a
// confirmed non-application is resent (and the token still guards the
// resend against races). When certainty cannot be restored within the
// retry budget, the typed ErrCommitUnknown surfaces so the caller can
// re-verify application state itself.
func (c *Client) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.syncSessionLocked()

	dirty := c.pool.DirtyFrames()
	if len(dirty) == 0 && len(c.rootsDirty) == 0 && len(c.frees) == 0 {
		// Read-only transaction: nothing to validate or apply.
		c.readSet = make(map[page.ID]uint64)
		c.rootsRead = false
		return nil
	}

	req := c.buildCommitReqLocked(c.newCommitToken())
	payload := encodeCommit(req)
	s := c.pickSlot()
	resp, err := c.doOnce(s, payload) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	if transient(err) {
		resp, err = c.resolveCommit(s, payload, req.token, err) //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
	}
	c.syncSessionLocked()
	if errors.Is(err, ErrConflict) {
		c.conflicts.Add(1)
		if rerr := c.conflictResetLocked(); rerr != nil { //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
			return rerr
		}
		return ErrConflict
	}
	if err != nil {
		return err
	}

	// Success: written pages advanced one version on the server.
	for _, f := range dirty {
		c.versions[f.ID]++
	}
	if len(c.rootsDirty) > 0 {
		c.rootsVer++
	}
	// The acknowledgement carries the server commit sequence after this
	// transaction applied. Adopt it as the session snapshot only when
	// this transaction was the sole one applied since the current
	// snapshot — a bigger jump means other transactions landed, and
	// pages this session still caches may be stale relative to the new
	// sequence, so the fast path stays off until the next cache reset.
	if len(resp) == 8 && c.snapSeq != 0 && binary.LittleEndian.Uint64(resp) == c.snapSeq+1 {
		c.snapSeq++
	} else {
		c.snapSeq = 0
	}
	c.commitsOK.Add(1)
	c.pool.MarkAllClean()
	c.resetTxnLocked()
	return nil
}

// CommitStats reports the session's transaction counters: commits the
// server acknowledged and commits aborted by optimistic validation.
func (c *Client) CommitStats() (commits, conflicts uint64) {
	return c.commitsOK.Load(), c.conflicts.Load()
}

// resolveCommit restores certainty about a commit whose connection
// died mid-flight: reconnect, ask the server whether the token was
// applied, and resend the payload only on a confirmed non-application.
func (c *Client) resolveCommit(s *connSlot, payload []byte, token uint64, cause error) ([]byte, error) {
	for attempt := 0; attempt < c.opts.RetryLimit; attempt++ {
		if err := c.redial(s, attempt); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			cause = err
			continue
		}
		c.commitChecks.Add(1)
		resp, err := c.doOnce(s, appendCommitCheck(make([]byte, 0, 9), token))
		if transient(err) {
			cause = err
			continue
		}
		if err != nil {
			return nil, err
		}
		if len(resp) != 1 {
			return nil, errors.New("remote: bad CommitCheck response")
		}
		if resp[0] == checkCommitted {
			// The commit landed before the connection died; the lost
			// frame was only the acknowledgement.
			return nil, nil
		}
		// Confirmed not applied: resending is safe, and the token
		// still deduplicates against any race.
		c.commitResends.Add(1)
		resp, err = c.doOnce(s, payload)
		if !transient(err) {
			return resp, err
		}
		cause = err
	}
	c.commitUnknowns.Add(1)
	return nil, fmt.Errorf("%w: %v", ErrCommitUnknown, cause)
}

func (c *Client) resetTxnLocked() {
	c.readSet = make(map[page.ID]uint64)
	c.rootsDirty = make(map[int]page.ID)
	c.rootsRead = false
	c.frees = nil
}

// Abort discards all uncommitted modifications: the entire workstation
// cache is dropped (dirty pages never left the workstation) and the
// root directory refreshed from the server.
func (c *Client) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots() //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
}

// DropCache empties the workstation cache so the next run fetches
// every page from the server (the cold run). It refuses to discard
// uncommitted work and refreshes the root directory.
func (c *Client) DropCache() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pool.DirtyFrames()) > 0 {
		return errors.New("remote: DropCache with uncommitted changes")
	}
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.readSet = make(map[page.ID]uint64)
	return c.fetchRoots() //hyperlint:allow lockorder -- mu deliberately serializes the session across this round trip; Close never takes Client.mu and unparks the wait via closedCh and the mux kill
}

// CacheStats reports workstation cache hits/misses and server fetches.
func (c *Client) CacheStats() (hits, misses, reads uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.fetches.Load()
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	_, err := c.call([]byte{opPing})
	return err
}

// ServerStats fetches the server's commit/abort/fetch counters.
func (c *Client) ServerStats() (commits, aborts, fetches uint64, err error) {
	resp, err := c.call([]byte{opStats})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp) != 24 {
		return 0, 0, 0, errors.New("remote: bad Stats response")
	}
	return binary.LittleEndian.Uint64(resp), binary.LittleEndian.Uint64(resp[8:]), binary.LittleEndian.Uint64(resp[16:]), nil
}

// Close terminates the connection pool. Uncommitted local changes are
// discarded, as when a workstation disconnects. Close is idempotent
// and safe to call concurrently with in-flight requests: every pending
// request on every pooled connection drains promptly with ErrClosed
// instead of being retried.
func (c *Client) Close() error {
	if !c.closed.CompareAndSwap(false, true) {
		return nil
	}
	close(c.closedCh)
	for _, s := range c.slots {
		s.mu.Lock()
		mc := s.mc
		s.mc = nil
		s.mu.Unlock()
		if mc != nil {
			mc.kill(ErrClosed)
		}
	}
	return nil
}

var _ store.Space = (*Client)(nil)
