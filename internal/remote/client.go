package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Client is the workstation side of the page-server architecture. It
// satisfies the backends' Space interface: pages are cached in a local
// buffer pool, misses are fetched from the server, and Commit ships
// the transaction's read set (for optimistic validation) and write set
// to the server atomically.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	pool     *buffer.Pool
	versions map[page.ID]uint64 // version of each cached page as fetched
	readSet  map[page.ID]uint64 // pages read since the last commit
	frees    []page.ID

	roots      [store.NumRoots]page.ID
	rootsVer   uint64
	rootsRead  bool
	rootsDirty map[int]page.ID

	hits, misses, fetches uint64
}

// ClientOptions configure a workstation client.
type ClientOptions struct {
	// PoolPages is the size of the workstation page cache (default
	// 1024 pages = 4 MiB).
	PoolPages int
}

// Dial connects to a page server and loads the root directory.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = 1024
	}
	c := &Client{
		conn:       conn,
		pool:       buffer.New(poolPages),
		versions:   make(map[page.ID]uint64),
		readSet:    make(map[page.ID]uint64),
		rootsDirty: make(map[int]page.ID),
	}
	if err := c.fetchRoots(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// call performs one request/response round trip. Callers hold c.mu.
func (c *Client) call(req []byte) ([]byte, error) {
	if err := writeFrame(c.conn, req); err != nil {
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("remote: receive: %w", err)
	}
	if len(resp) == 0 {
		return nil, errors.New("remote: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusConflict:
		return nil, ErrConflict
	default:
		return nil, fmt.Errorf("remote: server error: %s", resp[1:])
	}
}

func (c *Client) fetchRoots() error {
	resp, err := c.call([]byte{opRoots})
	if err != nil {
		return err
	}
	if len(resp) != 8+8*store.NumRoots {
		return errors.New("remote: bad roots response")
	}
	c.rootsVer = binary.LittleEndian.Uint64(resp)
	for i := 0; i < store.NumRoots; i++ {
		c.roots[i] = page.ID(binary.LittleEndian.Uint64(resp[8+8*i:]))
	}
	return nil
}

// handle implements store.Handle over the client pool.
type handle struct {
	c *Client
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.c.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.c.pool.Release(h.f) }

// Get pins the page, fetching it from the server on a cache miss, and
// records it in the transaction's read set.
func (c *Client) Get(id page.ID) (store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.pool.Get(id); f != nil {
		c.hits++
		c.readSet[id] = c.versions[id]
		return &handle{c, f}, nil
	}
	c.misses++
	req := append([]byte{opGetPage}, binary.LittleEndian.AppendUint64(nil, uint64(id))...)
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	if len(resp) != 8+page.Size {
		return nil, errors.New("remote: bad GetPage response")
	}
	c.fetches++
	ver := binary.LittleEndian.Uint64(resp)
	img := &page.Page{}
	copy(img.Bytes(), resp[8:])
	f := c.pool.Insert(id, img)
	c.versions[id] = ver
	c.readSet[id] = ver
	return &handle{c, f}, nil
}

// Alloc asks the server for a fresh page and materializes it dirty in
// the local cache; its contents travel with the next Commit.
func (c *Client) Alloc(t page.Type) (page.ID, store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call([]byte{opAlloc, byte(t)})
	if err != nil {
		return page.Invalid, nil, err
	}
	if len(resp) != 16 {
		return page.Invalid, nil, errors.New("remote: bad Alloc response")
	}
	id := page.ID(binary.LittleEndian.Uint64(resp))
	img := page.New(t)
	f := c.pool.Insert(id, img)
	c.pool.MarkDirty(f)
	c.versions[id] = binary.LittleEndian.Uint64(resp[8:])
	return id, &handle{c, f}, nil
}

// Free queues the page for release at the next Commit.
func (c *Client) Free(id page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Forget(id)
	c.frees = append(c.frees, id)
	return nil
}

// Root reads a root slot from the cached root directory.
func (c *Client) Root(slot int) page.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rootsRead = true
	return c.roots[slot]
}

// SetRoot updates a root slot; the change ships with the next Commit.
func (c *Client) SetRoot(slot int, id page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots[slot] = id
	c.rootsDirty[slot] = id
}

// Commit ships the transaction to the server. On ErrConflict the local
// caches are already discarded and the root directory refreshed; the
// caller re-runs its transaction.
func (c *Client) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	dirty := c.pool.DirtyFrames()
	if len(dirty) == 0 && len(c.rootsDirty) == 0 && len(c.frees) == 0 {
		// Read-only transaction: nothing to validate or apply.
		c.readSet = make(map[page.ID]uint64)
		c.rootsRead = false
		return nil
	}

	req := &commitReq{}
	for id, ver := range c.readSet {
		req.reads = append(req.reads, readEntry{id, ver})
	}
	if c.rootsRead || len(c.rootsDirty) > 0 {
		req.reads = append(req.reads, readEntry{rootsVersionKey, c.rootsVer})
	}
	for _, f := range dirty {
		f.Page.UpdateChecksum()
		req.writes = append(req.writes, writeEntry{f.ID, f.Page.Bytes()})
	}
	for slot, id := range c.rootsDirty {
		req.roots = append(req.roots, rootEntry{slot, id})
	}
	req.frees = c.frees

	_, err := c.call(encodeCommit(req))
	if errors.Is(err, ErrConflict) {
		// Discard the failed transaction: local caches are stale.
		c.pool.Drop()
		c.versions = make(map[page.ID]uint64)
		c.resetTxnLocked()
		if rerr := c.fetchRoots(); rerr != nil {
			return rerr
		}
		return ErrConflict
	}
	if err != nil {
		return err
	}

	// Success: written pages advanced one version on the server.
	for _, f := range dirty {
		c.versions[f.ID]++
	}
	if len(c.rootsDirty) > 0 {
		c.rootsVer++
	}
	c.pool.MarkAllClean()
	c.resetTxnLocked()
	return nil
}

func (c *Client) resetTxnLocked() {
	c.readSet = make(map[page.ID]uint64)
	c.rootsDirty = make(map[int]page.ID)
	c.rootsRead = false
	c.frees = nil
}

// Abort discards all uncommitted modifications: the entire workstation
// cache is dropped (dirty pages never left the workstation) and the
// root directory refreshed from the server.
func (c *Client) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots()
}

// DropCache empties the workstation cache so the next run fetches
// every page from the server (the cold run). It refuses to discard
// uncommitted work and refreshes the root directory.
func (c *Client) DropCache() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pool.DirtyFrames()) > 0 {
		return errors.New("remote: DropCache with uncommitted changes")
	}
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.readSet = make(map[page.ID]uint64)
	return c.fetchRoots()
}

// CacheStats reports workstation cache hits/misses and server fetches.
func (c *Client) CacheStats() (hits, misses, reads uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.fetches
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.call([]byte{opPing})
	return err
}

// ServerStats fetches the server's commit/abort/fetch counters.
func (c *Client) ServerStats() (commits, aborts, fetches uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call([]byte{opStats})
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp) != 24 {
		return 0, 0, 0, errors.New("remote: bad Stats response")
	}
	return binary.LittleEndian.Uint64(resp), binary.LittleEndian.Uint64(resp[8:]), binary.LittleEndian.Uint64(resp[16:]), nil
}

// Close terminates the connection. Uncommitted local changes are
// discarded, as when a workstation disconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

var _ store.Space = (*Client)(nil)
