package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Client is the workstation side of the page-server architecture. It
// satisfies the backends' Space interface: pages are cached in a local
// buffer pool, misses are fetched from the server, and Commit ships
// the transaction's read set (for optimistic validation) and write set
// to the server atomically.
type Client struct {
	mu       sync.Mutex
	conn     net.Conn
	pool     *buffer.Pool
	versions map[page.ID]uint64 // version of each cached page as fetched
	readSet  map[page.ID]uint64 // pages read since the last commit
	frees    []page.ID

	roots      [store.NumRoots]page.ID
	rootsVer   uint64
	rootsRead  bool
	rootsDirty map[int]page.ID

	// reqBuf is the grow-only request buffer: every outgoing frame is
	// assembled in it (length header included) and sent with a single
	// write, so steady-state requests allocate nothing.
	reqBuf []byte

	hits, misses, fetches uint64
	frames, batchFrames   uint64
}

// ClientOptions configure a workstation client.
type ClientOptions struct {
	// PoolPages is the size of the workstation page cache (default
	// 1024 pages = 4 MiB).
	PoolPages int
}

// Dial connects to a page server and loads the root directory.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	poolPages := opts.PoolPages
	if poolPages <= 0 {
		poolPages = 1024
	}
	c := &Client{
		conn:       conn,
		pool:       buffer.New(poolPages),
		versions:   make(map[page.ID]uint64),
		readSet:    make(map[page.ID]uint64),
		rootsDirty: make(map[int]page.ID),
	}
	if err := c.fetchRoots(); err != nil {
		conn.Close()
		return nil, err
	}
	return c, nil
}

// newReq starts a request frame in the reusable buffer, reserving the
// four length-header bytes. Callers append the payload and hand the
// frame to call. Callers hold c.mu.
func (c *Client) newReq() []byte {
	return append(c.reqBuf[:0], 0, 0, 0, 0)
}

// call fills in the frame header, performs one request/response round
// trip, and keeps the (possibly grown) frame buffer for reuse. framed
// must come from newReq. Callers hold c.mu.
func (c *Client) call(framed []byte) ([]byte, error) {
	c.reqBuf = framed
	binary.LittleEndian.PutUint32(framed[:4], uint32(len(framed)-4))
	c.frames++
	if _, err := c.conn.Write(framed); err != nil {
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	resp, err := readFrame(c.conn)
	if err != nil {
		return nil, fmt.Errorf("remote: receive: %w", err)
	}
	if len(resp) == 0 {
		return nil, errors.New("remote: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusConflict:
		return nil, ErrConflict
	default:
		return nil, fmt.Errorf("remote: server error: %s", resp[1:])
	}
}

func (c *Client) fetchRoots() error {
	resp, err := c.call(append(c.newReq(), opRoots))
	if err != nil {
		return err
	}
	if len(resp) != 8+8*store.NumRoots {
		return errors.New("remote: bad roots response")
	}
	c.rootsVer = binary.LittleEndian.Uint64(resp)
	for i := 0; i < store.NumRoots; i++ {
		c.roots[i] = page.ID(binary.LittleEndian.Uint64(resp[8+8*i:]))
	}
	return nil
}

// handle implements store.Handle over the client pool.
type handle struct {
	c *Client
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.c.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.c.pool.Release(h.f) }

// Get pins the page, fetching it from the server on a cache miss, and
// records it in the transaction's read set.
func (c *Client) Get(id page.ID) (store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.pool.Get(id); f != nil {
		c.hits++
		c.readSet[id] = c.versions[id]
		return &handle{c, f}, nil
	}
	c.misses++
	req := binary.LittleEndian.AppendUint64(append(c.newReq(), opGetPage), uint64(id))
	resp, err := c.call(req)
	if err != nil {
		return nil, err
	}
	if len(resp) != 8+page.Size {
		return nil, errors.New("remote: bad GetPage response")
	}
	c.fetches++
	ver := binary.LittleEndian.Uint64(resp)
	img := &page.Page{}
	copy(img.Bytes(), resp[8:])
	f := c.pool.Insert(id, img)
	c.versions[id] = ver
	c.readSet[id] = ver
	return &handle{c, f}, nil
}

// Prefetch warms the workstation cache with every listed page that is
// not already resident, fetching all of them from the server in a
// single opGetPages round trip (chunked only past maxBatchPages).
// Prefetched pages enter the pool and the version table but not the
// read set: optimistic validation covers exactly the pages the
// transaction actually reads, and a prefetched page only joins the
// read set when a later Get touches it.
func (c *Client) Prefetch(ids []page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []page.ID
	var seen map[page.ID]bool
	for _, id := range ids {
		if f := c.pool.Get(id); f != nil {
			c.pool.Release(f)
			continue
		}
		if seen == nil {
			seen = make(map[page.ID]bool, len(ids))
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		missing = append(missing, id)
	}
	for len(missing) > 0 {
		n := len(missing)
		if n > maxBatchPages {
			n = maxBatchPages
		}
		if err := c.fetchPagesLocked(missing[:n]); err != nil {
			return err
		}
		missing = missing[n:]
	}
	return nil
}

// fetchPagesLocked requests one chunk of pages in a single frame and
// inserts them into the pool. Callers hold c.mu.
func (c *Client) fetchPagesLocked(ids []page.ID) error {
	req := append(c.newReq(), opGetPages)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(ids)))
	for _, id := range ids {
		req = binary.LittleEndian.AppendUint64(req, uint64(id))
	}
	c.batchFrames++
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	if len(resp) != len(ids)*(8+page.Size) {
		return errors.New("remote: bad GetPages response")
	}
	off := 0
	for _, id := range ids {
		ver := binary.LittleEndian.Uint64(resp[off:])
		img := &page.Page{}
		copy(img.Bytes(), resp[off+8:off+8+page.Size])
		off += 8 + page.Size
		if f := c.pool.Get(id); f != nil {
			// Already resident (Insert would refuse a duplicate).
			c.pool.Release(f)
			continue
		}
		c.fetches++
		c.pool.Release(c.pool.Insert(id, img))
		c.versions[id] = ver
	}
	return nil
}

// FrameStats reports how many frames the client has sent in total and
// how many of them were batched page fetches (opGetPages).
func (c *Client) FrameStats() (total, batched uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames, c.batchFrames
}

// Alloc asks the server for a fresh page and materializes it dirty in
// the local cache; its contents travel with the next Commit.
func (c *Client) Alloc(t page.Type) (page.ID, store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call(append(c.newReq(), opAlloc, byte(t)))
	if err != nil {
		return page.Invalid, nil, err
	}
	if len(resp) != 16 {
		return page.Invalid, nil, errors.New("remote: bad Alloc response")
	}
	id := page.ID(binary.LittleEndian.Uint64(resp))
	img := page.New(t)
	f := c.pool.Insert(id, img)
	c.pool.MarkDirty(f)
	c.versions[id] = binary.LittleEndian.Uint64(resp[8:])
	return id, &handle{c, f}, nil
}

// Free queues the page for release at the next Commit.
func (c *Client) Free(id page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Forget(id)
	c.frees = append(c.frees, id)
	return nil
}

// Root reads a root slot from the cached root directory.
func (c *Client) Root(slot int) page.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rootsRead = true
	return c.roots[slot]
}

// SetRoot updates a root slot; the change ships with the next Commit.
func (c *Client) SetRoot(slot int, id page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots[slot] = id
	c.rootsDirty[slot] = id
}

// Commit ships the transaction to the server. On ErrConflict the local
// caches are already discarded and the root directory refreshed; the
// caller re-runs its transaction.
func (c *Client) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	dirty := c.pool.DirtyFrames()
	if len(dirty) == 0 && len(c.rootsDirty) == 0 && len(c.frees) == 0 {
		// Read-only transaction: nothing to validate or apply.
		c.readSet = make(map[page.ID]uint64)
		c.rootsRead = false
		return nil
	}

	req := &commitReq{}
	for id, ver := range c.readSet {
		req.reads = append(req.reads, readEntry{id, ver})
	}
	if c.rootsRead || len(c.rootsDirty) > 0 {
		req.reads = append(req.reads, readEntry{rootsVersionKey, c.rootsVer})
	}
	for _, f := range dirty {
		f.Page.UpdateChecksum()
		req.writes = append(req.writes, writeEntry{f.ID, f.Page.Bytes()})
	}
	for slot, id := range c.rootsDirty {
		req.roots = append(req.roots, rootEntry{slot, id})
	}
	req.frees = c.frees

	_, err := c.call(appendCommit(c.newReq(), req))
	if errors.Is(err, ErrConflict) {
		// Discard the failed transaction: local caches are stale.
		c.pool.Drop()
		c.versions = make(map[page.ID]uint64)
		c.resetTxnLocked()
		if rerr := c.fetchRoots(); rerr != nil {
			return rerr
		}
		return ErrConflict
	}
	if err != nil {
		return err
	}

	// Success: written pages advanced one version on the server.
	for _, f := range dirty {
		c.versions[f.ID]++
	}
	if len(c.rootsDirty) > 0 {
		c.rootsVer++
	}
	c.pool.MarkAllClean()
	c.resetTxnLocked()
	return nil
}

func (c *Client) resetTxnLocked() {
	c.readSet = make(map[page.ID]uint64)
	c.rootsDirty = make(map[int]page.ID)
	c.rootsRead = false
	c.frees = nil
}

// Abort discards all uncommitted modifications: the entire workstation
// cache is dropped (dirty pages never left the workstation) and the
// root directory refreshed from the server.
func (c *Client) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots()
}

// DropCache empties the workstation cache so the next run fetches
// every page from the server (the cold run). It refuses to discard
// uncommitted work and refreshes the root directory.
func (c *Client) DropCache() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pool.DirtyFrames()) > 0 {
		return errors.New("remote: DropCache with uncommitted changes")
	}
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.readSet = make(map[page.ID]uint64)
	return c.fetchRoots()
}

// CacheStats reports workstation cache hits/misses and server fetches.
func (c *Client) CacheStats() (hits, misses, reads uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.fetches
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.call(append(c.newReq(), opPing))
	return err
}

// ServerStats fetches the server's commit/abort/fetch counters.
func (c *Client) ServerStats() (commits, aborts, fetches uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call(append(c.newReq(), opStats))
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp) != 24 {
		return 0, 0, 0, errors.New("remote: bad Stats response")
	}
	return binary.LittleEndian.Uint64(resp), binary.LittleEndian.Uint64(resp[8:]), binary.LittleEndian.Uint64(resp[16:]), nil
}

// Close terminates the connection. Uncommitted local changes are
// discarded, as when a workstation disconnects.
func (c *Client) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.conn.Close()
}

var _ store.Space = (*Client)(nil)
