package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"hypermodel/internal/storage/buffer"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Client is the workstation side of the page-server architecture. It
// satisfies the backends' Space interface: pages are cached in a local
// buffer pool, misses are fetched from the server, and Commit ships
// the transaction's read set (for optimistic validation) and write set
// to the server atomically.
//
// The client survives a flaky network. Transport failures on
// idempotent requests (page fetches, roots, stats) redial with capped
// exponential backoff and resend; a failure with a commit in flight is
// resolved through the commit token (see Commit) so a transaction is
// applied at most once. Reconnecting invalidates the session's cached
// clean pages — they may be stale by the time the connection is back —
// while dirty pages stay resident: under the no-steal policy they
// exist nowhere else, and the read set still guards their validity at
// commit time.
type Client struct {
	mu       sync.Mutex
	pool     *buffer.Pool
	versions map[page.ID]uint64 // version of each cached page as fetched
	readSet  map[page.ID]uint64 // pages read since the last commit
	frees    []page.ID

	addr string
	opts ClientOptions
	rng  *rand.Rand // backoff jitter and commit tokens; guarded by mu

	// connMu guards the connection separately from mu so Close never
	// waits behind an in-flight request (and can interrupt one).
	connMu   sync.Mutex
	conn     net.Conn
	closed   bool
	closedCh chan struct{}

	roots      [store.NumRoots]page.ID
	rootsVer   uint64
	rootsRead  bool
	rootsDirty map[int]page.ID

	// reqBuf is the grow-only request buffer: every outgoing frame is
	// assembled in it (length header included) and sent with a single
	// write, so steady-state requests allocate nothing.
	reqBuf []byte

	// batchOK clears when the server refuses opGetPages; the client
	// then degrades to per-page fetches for the rest of its life.
	batchOK bool

	hits, misses, fetches uint64
	frames, batchFrames   uint64
	reconnects            uint64
	retries               uint64
	downgrades            uint64
	commitChecks          uint64
	commitResends         uint64
	commitUnknowns        uint64
}

// ClientOptions configure a workstation client.
type ClientOptions struct {
	// PoolPages is the size of the workstation page cache (default
	// 1024 pages = 4 MiB).
	PoolPages int
	// RequestTimeout bounds one request/response round trip. A request
	// that exceeds it fails like any other transport error (and is
	// retried if idempotent). Zero means no deadline.
	RequestTimeout time.Duration
	// RetryLimit is how many redial-and-resend attempts a failed
	// request gets before its transport error surfaces (default 8;
	// negative disables retries entirely).
	RetryLimit int
	// BackoffBase and BackoffMax shape the capped exponential redial
	// backoff (defaults 2ms and 250ms). Each wait is drawn uniformly
	// from (0, cap] — full jitter, so a herd of reconnecting clients
	// spreads out.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Dialer overrides how connections are made (tests route through
	// fault injectors). Default: net.Dial("tcp", addr).
	Dialer func(addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.PoolPages <= 0 {
		o.PoolPages = 1024
	}
	switch {
	case o.RetryLimit == 0:
		o.RetryLimit = 8
	case o.RetryLimit < 0:
		o.RetryLimit = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 2 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 250 * time.Millisecond
	}
	if o.Dialer == nil {
		o.Dialer = func(addr string) (net.Conn, error) { return net.Dial("tcp", addr) }
	}
	return o
}

// RetryStats are the client's fault-tolerance counters.
type RetryStats struct {
	Reconnects     uint64 // sessions re-established after a transport failure
	Retries        uint64 // idempotent requests resent after reconnecting
	Downgrades     uint64 // batched fetches degraded to per-page fetches
	CommitChecks   uint64 // commit-token probes after a mid-commit disconnect
	CommitResends  uint64 // commits resent after the server confirmed non-application
	CommitUnknowns uint64 // commits whose outcome could not be re-verified
}

// Dial connects to a page server and loads the root directory.
func Dial(addr string, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	conn, err := opts.Dialer(addr)
	if err != nil {
		return nil, fmt.Errorf("remote: dial %s: %w", addr, err)
	}
	c := &Client{
		addr:       addr,
		opts:       opts,
		rng:        rand.New(rand.NewSource(rand.Int63())),
		conn:       conn,
		closedCh:   make(chan struct{}),
		pool:       buffer.New(opts.PoolPages),
		versions:   make(map[page.ID]uint64),
		readSet:    make(map[page.ID]uint64),
		rootsDirty: make(map[int]page.ID),
		batchOK:    true,
	}
	if err := c.fetchRoots(); err != nil {
		c.Close()
		return nil, err
	}
	return c, nil
}

// newReq starts a request frame in the reusable buffer, reserving the
// four length-header bytes. Callers append the payload and hand the
// frame to call. Callers hold c.mu.
func (c *Client) newReq() []byte {
	return append(c.reqBuf[:0], 0, 0, 0, 0)
}

// errNotConnected marks the window between a dropped connection and
// the redial; it is transport-class (retriable).
var errNotConnected = errors.New("remote: not connected")

// currentConn snapshots the live connection.
func (c *Client) currentConn() (net.Conn, error) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.closed {
		return nil, ErrClosed
	}
	if c.conn == nil {
		return nil, errNotConnected
	}
	return c.conn, nil
}

// dropConn retires a connection after a transport failure, unless a
// newer one has already replaced it.
func (c *Client) dropConn(conn net.Conn) {
	c.connMu.Lock()
	defer c.connMu.Unlock()
	if c.conn == conn {
		conn.Close()
		c.conn = nil
	}
}

// transient reports whether err is a transport-class failure — the
// request may never have reached the server, so reconnecting and
// retrying can help. Definite outcomes (server replies, conflicts,
// Close) are final.
func transient(err error) bool {
	if err == nil || errors.Is(err, ErrConflict) || errors.Is(err, ErrClosed) {
		return false
	}
	var se *ServerError
	return !errors.As(err, &se)
}

// idempotentOp reports whether a request may be resent blindly after a
// transport failure. Fetches and probes are read-only. Alloc is
// retriable too: a lost Alloc response can at worst leave an
// unreferenced page allocated server-side (reclaimable by GC), never
// an inconsistency. Commits are the exception — they go through the
// token-resolution path instead.
func idempotentOp(op byte) bool {
	switch op {
	case opGetPage, opGetPages, opRoots, opPing, opStats, opAlloc, opCommitCheck:
		return true
	}
	return false
}

// seal fills in the frame's length header and keeps the (possibly
// grown) buffer for reuse.
func (c *Client) seal(framed []byte) {
	c.reqBuf = framed
	binary.LittleEndian.PutUint32(framed[:4], uint32(len(framed)-4))
}

// callOnce performs one request/response round trip on the current
// connection, under the per-request deadline. Transport failures
// retire the connection.
func (c *Client) callOnce(framed []byte) ([]byte, error) {
	conn, err := c.currentConn()
	if err != nil {
		return nil, err
	}
	if d := c.opts.RequestTimeout; d > 0 {
		conn.SetDeadline(time.Now().Add(d))
		defer conn.SetDeadline(time.Time{})
	}
	c.frames++
	if _, err := conn.Write(framed); err != nil {
		c.dropConn(conn)
		return nil, fmt.Errorf("remote: send: %w", err)
	}
	resp, err := readFrame(conn)
	if err != nil {
		c.dropConn(conn)
		return nil, fmt.Errorf("remote: receive: %w", err)
	}
	if len(resp) == 0 {
		// Protocol desync: retire the connection rather than guess.
		c.dropConn(conn)
		return nil, errors.New("remote: empty response")
	}
	switch resp[0] {
	case statusOK:
		return resp[1:], nil
	case statusConflict:
		return nil, ErrConflict
	case statusBadRequest:
		return nil, &ServerError{BadRequest: true, Msg: string(resp[1:])}
	default:
		return nil, &ServerError{Msg: string(resp[1:])}
	}
}

// call performs one request/response round trip. Transport failures on
// idempotent requests redial with backoff and resend the same frame;
// non-idempotent requests surface the failure to their caller (Commit
// resolves it through the commit token). framed must come from newReq.
// Callers hold c.mu.
func (c *Client) call(framed []byte) ([]byte, error) {
	c.seal(framed)
	resp, err := c.callOnce(framed)
	if !transient(err) || !idempotentOp(framed[4]) {
		return resp, err
	}
	return c.retryCall(framed, err)
}

// retryCall redials and resends an idempotent frame until it gets a
// definite answer or the retry budget runs out.
func (c *Client) retryCall(framed []byte, first error) ([]byte, error) {
	lastErr := first
	for attempt := 0; attempt < c.opts.RetryLimit; attempt++ {
		if err := c.redial(attempt); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			lastErr = err
			continue
		}
		c.retries++
		resp, err := c.callOnce(framed)
		if !transient(err) {
			return resp, err
		}
		lastErr = err
	}
	return nil, fmt.Errorf("remote: request failed after %d attempts: %w", c.opts.RetryLimit+1, lastErr)
}

// redial re-establishes the server session: capped exponential backoff
// with full jitter, a fresh connection, and session invalidation.
// Callers hold c.mu.
func (c *Client) redial(attempt int) error {
	if err := c.backoff(attempt); err != nil {
		return err
	}
	conn, err := c.opts.Dialer(c.addr)
	if err != nil {
		return fmt.Errorf("remote: redial %s: %w", c.addr, err)
	}
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		conn.Close()
		return ErrClosed
	}
	if c.conn != nil {
		c.conn.Close()
	}
	c.conn = conn
	c.connMu.Unlock()
	c.reconnects++
	c.invalidateSessionLocked()
	return nil
}

// backoff sleeps before redial attempt n (the first attempt is
// immediate), or returns early when the client closes.
func (c *Client) backoff(attempt int) error {
	if attempt == 0 {
		return nil
	}
	cap := c.opts.BackoffBase << (attempt - 1)
	if cap > c.opts.BackoffMax || cap <= 0 {
		cap = c.opts.BackoffMax
	}
	d := time.Duration(1 + c.rng.Int63n(int64(cap)))
	select {
	case <-time.After(d):
		return nil
	case <-c.closedCh:
		return ErrClosed
	}
}

// invalidateSessionLocked discards session state a reconnect makes
// untrustworthy: clean cached pages (the server may have moved on
// while we were gone) and their version records. Dirty frames and the
// read set survive — the dirty images exist nowhere else under
// no-steal, and the read set is the transaction's evidence, which
// optimistic validation checks at commit regardless of how often the
// connection bounced.
func (c *Client) invalidateSessionLocked() {
	c.pool.DropClean()
	keep := make(map[page.ID]uint64)
	for _, id := range c.pool.ResidentIDs() {
		if v, ok := c.versions[id]; ok {
			keep[id] = v
		}
	}
	c.versions = keep
}

// conflictResetLocked discards the failed transaction — local caches
// are stale — and refreshes the root directory.
func (c *Client) conflictResetLocked() error {
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots()
}

func (c *Client) fetchRoots() error {
	resp, err := c.call(append(c.newReq(), opRoots))
	if err != nil {
		return err
	}
	if len(resp) != 8+8*store.NumRoots {
		return errors.New("remote: bad roots response")
	}
	c.rootsVer = binary.LittleEndian.Uint64(resp)
	for i := 0; i < store.NumRoots; i++ {
		c.roots[i] = page.ID(binary.LittleEndian.Uint64(resp[8+8*i:]))
	}
	return nil
}

// handle implements store.Handle over the client pool.
type handle struct {
	c *Client
	f *buffer.Frame
}

func (h *handle) Page() *page.Page { return h.f.Page }
func (h *handle) MarkDirty()       { h.c.pool.MarkDirty(h.f) }
func (h *handle) Release()         { h.c.pool.Release(h.f) }

// fetchPageLocked fetches one page image from the server. Callers hold
// c.mu.
func (c *Client) fetchPageLocked(id page.ID) (uint64, *page.Page, error) {
	req := binary.LittleEndian.AppendUint64(append(c.newReq(), opGetPage), uint64(id))
	resp, err := c.call(req)
	if err != nil {
		return 0, nil, err
	}
	if len(resp) != 8+page.Size {
		return 0, nil, errors.New("remote: bad GetPage response")
	}
	c.fetches++
	img := &page.Page{}
	copy(img.Bytes(), resp[8:])
	return binary.LittleEndian.Uint64(resp), img, nil
}

// checkReadVersionLocked guards snapshot consistency: if the
// transaction already read this page at a different version (the frame
// has since been evicted or invalidated and the server moved on), any
// commit would mix two snapshots while validating only the newer one.
// Surface the conflict immediately, exactly like a commit-time abort.
func (c *Client) checkReadVersionLocked(id page.ID, ver uint64) error {
	prev, ok := c.readSet[id]
	if !ok || prev == ver {
		return nil
	}
	if err := c.conflictResetLocked(); err != nil {
		return err
	}
	return ErrConflict
}

// Get pins the page, fetching it from the server on a cache miss, and
// records it in the transaction's read set.
func (c *Client) Get(id page.ID) (store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if f := c.pool.Get(id); f != nil {
		c.hits++
		c.readSet[id] = c.versions[id]
		return &handle{c, f}, nil
	}
	c.misses++
	ver, img, err := c.fetchPageLocked(id)
	if err != nil {
		return nil, err
	}
	if err := c.checkReadVersionLocked(id, ver); err != nil {
		return nil, err
	}
	f := c.pool.Insert(id, img)
	c.versions[id] = ver
	c.readSet[id] = ver
	return &handle{c, f}, nil
}

// Prefetch warms the workstation cache with every listed page that is
// not already resident, fetching all of them from the server in a
// single opGetPages round trip (chunked only past maxBatchPages).
// Prefetched pages enter the pool and the version table but not the
// read set: optimistic validation covers exactly the pages the
// transaction actually reads, and a prefetched page only joins the
// read set when a later Get touches it.
func (c *Client) Prefetch(ids []page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	var missing []page.ID
	var seen map[page.ID]bool
	for _, id := range ids {
		if f := c.pool.Get(id); f != nil {
			c.pool.Release(f)
			continue
		}
		if seen == nil {
			seen = make(map[page.ID]bool, len(ids))
		}
		if seen[id] {
			continue
		}
		seen[id] = true
		missing = append(missing, id)
	}
	for len(missing) > 0 {
		n := len(missing)
		if n > maxBatchPages {
			n = maxBatchPages
		}
		if err := c.fetchPagesLocked(missing[:n]); err != nil {
			return err
		}
		missing = missing[n:]
	}
	return nil
}

// fetchPagesLocked brings one chunk of pages into the pool, batched
// when the server supports it. When the server refuses opGetPages (an
// older server, or a policy rejection) the client records the
// downgrade and degrades gracefully to per-page fetches — slower, but
// the traversal completes. Callers hold c.mu.
func (c *Client) fetchPagesLocked(ids []page.ID) error {
	if c.batchOK {
		err := c.fetchPageBatchLocked(ids)
		var se *ServerError
		if err == nil || !errors.As(err, &se) {
			return err // success, or transport retries exhausted
		}
		c.batchOK = false
		c.downgrades++
	}
	for _, id := range ids {
		if f := c.pool.Get(id); f != nil {
			c.pool.Release(f)
			continue
		}
		ver, img, err := c.fetchPageLocked(id)
		if err != nil {
			return err
		}
		if err := c.checkReadVersionLocked(id, ver); err != nil {
			return err
		}
		c.pool.Release(c.pool.Insert(id, img))
		c.versions[id] = ver
	}
	return nil
}

// fetchPageBatchLocked requests one chunk of pages in a single frame
// and inserts them into the pool. Callers hold c.mu.
func (c *Client) fetchPageBatchLocked(ids []page.ID) error {
	req := append(c.newReq(), opGetPages)
	req = binary.LittleEndian.AppendUint32(req, uint32(len(ids)))
	for _, id := range ids {
		req = binary.LittleEndian.AppendUint64(req, uint64(id))
	}
	c.batchFrames++
	resp, err := c.call(req)
	if err != nil {
		return err
	}
	if len(resp) != len(ids)*(8+page.Size) {
		return errors.New("remote: bad GetPages response")
	}
	off := 0
	for _, id := range ids {
		ver := binary.LittleEndian.Uint64(resp[off:])
		img := &page.Page{}
		copy(img.Bytes(), resp[off+8:off+8+page.Size])
		off += 8 + page.Size
		if f := c.pool.Get(id); f != nil {
			// Already resident (Insert would refuse a duplicate).
			c.pool.Release(f)
			continue
		}
		if err := c.checkReadVersionLocked(id, ver); err != nil {
			return err
		}
		c.fetches++
		c.pool.Release(c.pool.Insert(id, img))
		c.versions[id] = ver
	}
	return nil
}

// FrameStats reports how many frames the client has sent in total
// (retries included) and how many of them were batched page fetches
// (opGetPages).
func (c *Client) FrameStats() (total, batched uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.frames, c.batchFrames
}

// RetryStats reports the client's fault-tolerance counters.
func (c *Client) RetryStats() RetryStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return RetryStats{
		Reconnects:     c.reconnects,
		Retries:        c.retries,
		Downgrades:     c.downgrades,
		CommitChecks:   c.commitChecks,
		CommitResends:  c.commitResends,
		CommitUnknowns: c.commitUnknowns,
	}
}

// Alloc asks the server for a fresh page and materializes it dirty in
// the local cache; its contents travel with the next Commit.
func (c *Client) Alloc(t page.Type) (page.ID, store.Handle, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call(append(c.newReq(), opAlloc, byte(t)))
	if err != nil {
		return page.Invalid, nil, err
	}
	if len(resp) != 16 {
		return page.Invalid, nil, errors.New("remote: bad Alloc response")
	}
	id := page.ID(binary.LittleEndian.Uint64(resp))
	img := page.New(t)
	f := c.pool.Insert(id, img)
	c.pool.MarkDirty(f)
	c.versions[id] = binary.LittleEndian.Uint64(resp[8:])
	return id, &handle{c, f}, nil
}

// Free queues the page for release at the next Commit.
func (c *Client) Free(id page.ID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Forget(id)
	c.frees = append(c.frees, id)
	return nil
}

// Root reads a root slot from the cached root directory.
func (c *Client) Root(slot int) page.ID {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rootsRead = true
	return c.roots[slot]
}

// SetRoot updates a root slot; the change ships with the next Commit.
func (c *Client) SetRoot(slot int, id page.ID) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.roots[slot] = id
	c.rootsDirty[slot] = id
}

// newCommitToken draws a fresh nonzero commit token.
func (c *Client) newCommitToken() uint64 {
	for {
		if tok := c.rng.Uint64(); tok != 0 {
			return tok
		}
	}
}

// Commit ships the transaction to the server. On ErrConflict the local
// caches are already discarded and the root directory refreshed; the
// caller re-runs its transaction.
//
// Commits are never blindly retried. Each carries a unique token the
// server remembers; if the connection dies with the commit in flight,
// the client reconnects and asks whether the token was applied. Only a
// confirmed non-application is resent (and the token still guards the
// resend against races). When certainty cannot be restored within the
// retry budget, the typed ErrCommitUnknown surfaces so the caller can
// re-verify application state itself.
func (c *Client) Commit() error {
	c.mu.Lock()
	defer c.mu.Unlock()

	dirty := c.pool.DirtyFrames()
	if len(dirty) == 0 && len(c.rootsDirty) == 0 && len(c.frees) == 0 {
		// Read-only transaction: nothing to validate or apply.
		c.readSet = make(map[page.ID]uint64)
		c.rootsRead = false
		return nil
	}

	req := &commitReq{token: c.newCommitToken()}
	for id, ver := range c.readSet {
		req.reads = append(req.reads, readEntry{id, ver})
	}
	if c.rootsRead || len(c.rootsDirty) > 0 {
		req.reads = append(req.reads, readEntry{rootsVersionKey, c.rootsVer})
	}
	for _, f := range dirty {
		f.Page.UpdateChecksum()
		req.writes = append(req.writes, writeEntry{f.ID, f.Page.Bytes()})
	}
	for slot, id := range c.rootsDirty {
		req.roots = append(req.roots, rootEntry{slot, id})
	}
	req.frees = c.frees

	framed := appendCommit(c.newReq(), req)
	c.seal(framed)
	_, err := c.callOnce(framed)
	if transient(err) {
		_, err = c.resolveCommit(framed, req.token, err)
	}
	if errors.Is(err, ErrConflict) {
		if rerr := c.conflictResetLocked(); rerr != nil {
			return rerr
		}
		return ErrConflict
	}
	if err != nil {
		return err
	}

	// Success: written pages advanced one version on the server.
	for _, f := range dirty {
		c.versions[f.ID]++
	}
	if len(c.rootsDirty) > 0 {
		c.rootsVer++
	}
	c.pool.MarkAllClean()
	c.resetTxnLocked()
	return nil
}

// resolveCommit restores certainty about a commit whose connection
// died mid-flight: reconnect, ask the server whether the token was
// applied, and resend the frame only on a confirmed non-application.
// Callers hold c.mu; framed stays valid in c.reqBuf throughout.
func (c *Client) resolveCommit(framed []byte, token uint64, cause error) ([]byte, error) {
	var check []byte
	for attempt := 0; attempt < c.opts.RetryLimit; attempt++ {
		if err := c.redial(attempt); err != nil {
			if errors.Is(err, ErrClosed) {
				return nil, err
			}
			cause = err
			continue
		}
		check = binary.LittleEndian.AppendUint64(append(check[:0], 0, 0, 0, 0, opCommitCheck), token)
		binary.LittleEndian.PutUint32(check[:4], uint32(len(check)-4))
		c.commitChecks++
		resp, err := c.callOnce(check)
		if transient(err) {
			cause = err
			continue
		}
		if err != nil {
			return nil, err
		}
		if len(resp) != 1 {
			return nil, errors.New("remote: bad CommitCheck response")
		}
		if resp[0] == 1 {
			// The commit landed before the connection died; the lost
			// frame was only the acknowledgement.
			return nil, nil
		}
		// Confirmed not applied: resending is safe, and the token
		// still deduplicates against any race.
		c.commitResends++
		resp, err = c.callOnce(framed)
		if !transient(err) {
			return resp, err
		}
		cause = err
	}
	c.commitUnknowns++
	return nil, fmt.Errorf("%w: %v", ErrCommitUnknown, cause)
}

func (c *Client) resetTxnLocked() {
	c.readSet = make(map[page.ID]uint64)
	c.rootsDirty = make(map[int]page.ID)
	c.rootsRead = false
	c.frees = nil
}

// Abort discards all uncommitted modifications: the entire workstation
// cache is dropped (dirty pages never left the workstation) and the
// root directory refreshed from the server.
func (c *Client) Abort() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.resetTxnLocked()
	return c.fetchRoots()
}

// DropCache empties the workstation cache so the next run fetches
// every page from the server (the cold run). It refuses to discard
// uncommitted work and refreshes the root directory.
func (c *Client) DropCache() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if len(c.pool.DirtyFrames()) > 0 {
		return errors.New("remote: DropCache with uncommitted changes")
	}
	c.pool.Drop()
	c.versions = make(map[page.ID]uint64)
	c.readSet = make(map[page.ID]uint64)
	return c.fetchRoots()
}

// CacheStats reports workstation cache hits/misses and server fetches.
func (c *Client) CacheStats() (hits, misses, reads uint64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.fetches
}

// Ping checks connectivity.
func (c *Client) Ping() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, err := c.call(append(c.newReq(), opPing))
	return err
}

// ServerStats fetches the server's commit/abort/fetch counters.
func (c *Client) ServerStats() (commits, aborts, fetches uint64, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	resp, err := c.call(append(c.newReq(), opStats))
	if err != nil {
		return 0, 0, 0, err
	}
	if len(resp) != 24 {
		return 0, 0, 0, errors.New("remote: bad Stats response")
	}
	return binary.LittleEndian.Uint64(resp), binary.LittleEndian.Uint64(resp[8:]), binary.LittleEndian.Uint64(resp[16:]), nil
}

// Close terminates the connection. Uncommitted local changes are
// discarded, as when a workstation disconnects. Close is idempotent
// and safe to call concurrently with an in-flight request: the request
// is interrupted and fails with ErrClosed instead of being retried.
func (c *Client) Close() error {
	c.connMu.Lock()
	if c.closed {
		c.connMu.Unlock()
		return nil
	}
	c.closed = true
	close(c.closedCh)
	conn := c.conn
	c.conn = nil
	c.connMu.Unlock()
	if conn != nil {
		return conn.Close()
	}
	return nil
}

var _ store.Space = (*Client)(nil)
