package remote

import (
	"fmt"
	"math/bits"
	"sort"
	"time"
)

// latBuckets is the number of latency histogram buckets. Bucket 0
// counts sub-microsecond round trips; bucket i counts round trips in
// [2^(i-1), 2^i) microseconds, so the top bucket covers everything
// from ~0.5s up.
const latBuckets = 20

// opHist accumulates one opcode's round-trip latencies.
type opHist struct {
	count   uint64
	totalNs int64
	buckets [latBuckets]uint64
}

// OpLatency is one opcode's round-trip latency histogram.
type OpLatency struct {
	Op      string
	Count   uint64
	Total   time.Duration
	Buckets [latBuckets]uint64
}

// Mean is the average round trip for this opcode.
func (o OpLatency) Mean() time.Duration {
	if o.Count == 0 {
		return 0
	}
	return o.Total / time.Duration(o.Count)
}

// InflightStats are the client's pipelining counters — the RetryStats
// of the multiplexed transport.
type InflightStats struct {
	// MaxDepth is the peak number of requests outstanding at once
	// across the connection pool.
	MaxDepth uint64
	// QueueWait is the cumulative time requests spent queued behind
	// the per-connection in-flight cap before reaching the wire.
	QueueWait time.Duration
	// UnknownResponses counts response frames whose request ID matched
	// no waiter (requests that timed out locally, or server bugs).
	UnknownResponses uint64
	// Ops holds one round-trip latency histogram per opcode, sorted by
	// opcode name.
	Ops []OpLatency
}

// opName renders an opcode for stats output. A switch over the
// constants in a non-Server function routes behavior, not frames, so
// the opcodes analyzer counts these uses as neither dispatch nor
// encoding sites.
func opName(op byte) string {
	switch op {
	case opGetPage:
		return "GetPage"
	case opAlloc:
		return "Alloc"
	case opRoots:
		return "Roots"
	case opCommit:
		return "Commit"
	case opStats:
		return "Stats"
	case opPing:
		return "Ping"
	case opGetPages:
		return "GetPages"
	case opCommitCheck:
		return "CommitCheck"
	}
	return fmt.Sprintf("op%d", op)
}

// latBucket maps a round-trip duration to its histogram bucket.
func latBucket(d time.Duration) int {
	us := d.Microseconds()
	if us <= 0 {
		return 0
	}
	b := bits.Len64(uint64(us))
	if b >= latBuckets {
		return latBuckets - 1
	}
	return b
}

// recordOp folds one completed round trip into the per-opcode
// histogram. The histogram mutex guards in-memory counters only —
// never conn I/O — so it cannot stall the wire.
func (c *Client) recordOp(op byte, d time.Duration) {
	c.histMu.Lock()
	h := c.hist[op]
	if h == nil {
		h = &opHist{}
		c.hist[op] = h
	}
	h.count++
	h.totalNs += d.Nanoseconds()
	h.buckets[latBucket(d)]++
	c.histMu.Unlock()
}

// InflightStats snapshots the client's pipelining counters.
func (c *Client) InflightStats() InflightStats {
	st := InflightStats{
		MaxDepth:         uint64(c.peakInflight.Load()),
		QueueWait:        time.Duration(c.queueWaitNs.Load()),
		UnknownResponses: c.unknownResps.Load(),
	}
	c.histMu.Lock()
	for op, h := range c.hist {
		st.Ops = append(st.Ops, OpLatency{
			Op:      opName(op),
			Count:   h.count,
			Total:   time.Duration(h.totalNs),
			Buckets: h.buckets,
		})
	}
	c.histMu.Unlock()
	sort.Slice(st.Ops, func(i, j int) bool { return st.Ops[i].Op < st.Ops[j].Op })
	return st
}
