// Cluster routing: the workstation side of the horizontally sharded
// page service.
//
// A cluster is N page servers, each owning a disjoint page space. The
// partitioning key is baked into the page ID itself: the top byte of a
// cluster-wide ID names the owning shard and the low 56 bits are the
// page's local ID there, so routing a request is a shift, not a lookup.
// Shard 0's IDs coincide with its local IDs, which keeps a one-shard
// cluster byte-identical to a standalone server — the degenerate
// configuration costs nothing and the routing-table tests pin it.
//
// Placement rides the allocator: Alloc hands out runs of allocChunk
// consecutive pages from one shard before rotating to the next, so the
// clustering subtrees the backends build from consecutive allocations
// (the 1-N parent/child placement the HyperModel workload leans on)
// land on one shard and a closure traversal's frontier mostly fans out
// to the shard it is already reading.
//
// The routing table itself — epoch plus shard addresses — is served by
// every shard via opRouteTable. Clients adopt a re-fetched table only
// when its epoch is strictly newer than the one they hold; a stale
// answer from a lagging shard is counted and ignored.
//
// Commits: a transaction whose entire footprint (reads and writes)
// stayed on one shard takes that shard's ordinary optimistic-commit
// path, group commit and all. A cross-shard transaction runs two-phase
// commit: the lowest dirty shard is the coordinator (its ID rides in
// the token's top byte), every touched shard votes via opPrepare —
// which validates the read set exactly like a commit and stages the
// write set durably — and the decision is delivered via opDecide,
// coordinator first. The coordinator's durable decide is the commit
// point: participants that miss their decide (a crash, a partition)
// are healed by their server-side resolver, which polls the
// coordinator via opCommitCheck. Prepare order is the mirror
// invariant: the coordinator is prepared before any participant, so a
// participant holding a prepare implies the coordinator durably knows
// the transaction and can answer for it.
package remote

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// shardShift positions the shard ID in the top byte of a cluster-wide
// page ID, and of a cross-shard commit token (where it names the
// coordinator).
const shardShift = 56

// maxShards bounds the cluster size well below the 255 values the top
// byte could carry, keeping the all-ones page.Invalid pattern (shard
// 255) unroutable by construction.
const maxShards = 128

// allocChunk is how many consecutive allocations land on one shard
// before the allocator rotates — the clustering grain.
const allocChunk = 64

// globalID composes a cluster-wide page ID from a shard and its local
// ID; shard 0's global IDs equal its local IDs.
func globalID(shard int, local page.ID) page.ID {
	return page.ID(uint64(shard)<<shardShift | uint64(local))
}

// shardOfID extracts the owning shard from a cluster-wide page ID.
func shardOfID(id page.ID) int { return int(uint64(id) >> shardShift) }

// localIDOf strips the shard byte, leaving the page's ID on its shard.
func localIDOf(id page.ID) page.ID { return page.ID(uint64(id) & (1<<shardShift - 1)) }

// ClusterPageID composes a cluster-wide page ID from a shard and one
// of its local page IDs — for tools and experiments that address a
// shard's pages directly.
func ClusterPageID(shard int, local page.ID) page.ID { return globalID(shard, local) }

// ShardOfPage reports which shard a cluster-wide page ID routes to.
func ShardOfPage(id page.ID) int { return shardOfID(id) }

// RouteTable maps the cluster: Shards[i] is the address of shard i,
// and Epoch versions the mapping — a client adopts a table only when
// its epoch is strictly newer than the one it holds.
type RouteTable struct {
	Epoch  uint64
	Shards []string
}

// ClusterOptions configure a cluster client.
type ClusterOptions struct {
	// Client configures each per-shard session (pool size, connection
	// count, retry budget); every shard gets the same configuration.
	Client ClientOptions
}

// ClusterStats are the cluster client's routing and commit counters.
type ClusterStats struct {
	Shards       int    // shards in the adopted table
	Epoch        uint64 // adopted table epoch
	FastCommits  uint64 // transactions whose footprint stayed on one shard
	CrossCommits uint64 // two-phase commits driven to a commit decision
	CrossAborts  uint64 // two-phase commits aborted (conflict or failure)
	Refreshes    uint64 // routing-table re-fetches attempted
	StaleTables  uint64 // fetched tables rejected for a non-newer epoch
}

// ClusterClient fans a workstation session out over a shard cluster.
// It satisfies the same Space contract as a single-server Client —
// the backends cannot tell them apart — by keeping one Client session
// per shard and routing every operation by the page ID's shard byte.
type ClusterClient struct {
	opts ClusterOptions

	// mu guards the adopted table and the per-shard sessions; a table
	// adoption swaps individual sessions, everything else only reads.
	mu    sync.RWMutex
	table RouteTable
	subs  []*Client

	allocCursor atomic.Uint64

	rngMu sync.Mutex
	rng   *rand.Rand // cross-shard commit tokens

	fastCommits  atomic.Uint64
	crossCommits atomic.Uint64
	crossAborts  atomic.Uint64
	refreshes    atomic.Uint64
	staleTables  atomic.Uint64
}

// DialCluster bootstraps from one reachable shard: fetch its routing
// table, then dial every shard in it. A server with an empty table
// (a standalone server never given one) cannot anchor a cluster.
func DialCluster(seed string, opts ClusterOptions) (*ClusterClient, error) {
	boot, err := Dial(seed, opts.Client)
	if err != nil {
		return nil, err
	}
	epoch, addrs, err := boot.RouteTable()
	boot.Close()
	if err != nil {
		return nil, fmt.Errorf("remote: fetch routing table from %s: %w", seed, err)
	}
	return DialClusterTable(RouteTable{Epoch: epoch, Shards: addrs}, opts)
}

// DialClusterTable dials every shard of an explicitly supplied table —
// the path for tests and for deployments that distribute the table out
// of band.
func DialClusterTable(table RouteTable, opts ClusterOptions) (*ClusterClient, error) {
	if len(table.Shards) == 0 {
		return nil, errors.New("remote: empty routing table")
	}
	if len(table.Shards) > maxShards {
		return nil, fmt.Errorf("remote: routing table names %d shards, limit %d", len(table.Shards), maxShards)
	}
	cc := &ClusterClient{
		opts: opts,
		table: RouteTable{
			Epoch:  table.Epoch,
			Shards: append([]string(nil), table.Shards...),
		},
		rng: rand.New(rand.NewSource(rand.Int63())),
	}
	for i, addr := range table.Shards {
		sub, err := Dial(addr, opts.Client)
		if err != nil {
			cc.Close()
			return nil, fmt.Errorf("remote: dial shard %d at %s: %w", i, addr, err)
		}
		cc.subs = append(cc.subs, sub)
	}
	return cc, nil
}

// sub returns the current session for a shard.
func (cc *ClusterClient) sub(shard int) *Client {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.subs[shard]
}

// snapshotSubs returns a stable view of the per-shard sessions for a
// multi-step operation, so a concurrent table adoption cannot swap a
// session out mid-protocol.
func (cc *ClusterClient) snapshotSubs() []*Client {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return append([]*Client(nil), cc.subs...)
}

// ShardCount reports how many shards the adopted table names.
func (cc *ClusterClient) ShardCount() int {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return len(cc.subs)
}

// Epoch reports the adopted routing-table epoch.
func (cc *ClusterClient) Epoch() uint64 {
	cc.mu.RLock()
	defer cc.mu.RUnlock()
	return cc.table.Epoch
}

// Stats reports the cluster client's counters.
func (cc *ClusterClient) Stats() ClusterStats {
	cc.mu.RLock()
	shards, epoch := len(cc.subs), cc.table.Epoch
	cc.mu.RUnlock()
	return ClusterStats{
		Shards:       shards,
		Epoch:        epoch,
		FastCommits:  cc.fastCommits.Load(),
		CrossCommits: cc.crossCommits.Load(),
		CrossAborts:  cc.crossAborts.Load(),
		Refreshes:    cc.refreshes.Load(),
		StaleTables:  cc.staleTables.Load(),
	}
}

// routeCheck validates that an ID routes inside the cluster.
func (cc *ClusterClient) routeCheck(id page.ID) (int, error) {
	sh := shardOfID(id)
	if sh >= cc.ShardCount() {
		return 0, fmt.Errorf("remote: page %#x routes to shard %d, table has %d", uint64(id), sh, cc.ShardCount())
	}
	return sh, nil
}

// Get pins a page from its owning shard. A transport failure that
// survives the session's own retry budget triggers one routing-table
// refresh — the shard may have moved — before the fetch is retried.
func (cc *ClusterClient) Get(id page.ID) (store.Handle, error) {
	sh, err := cc.routeCheck(id)
	if err != nil {
		return nil, err
	}
	h, gerr := cc.sub(sh).Get(localIDOf(id))
	if gerr != nil && transient(gerr) {
		if rerr := cc.RefreshTable(); rerr == nil {
			return cc.sub(sh).Get(localIDOf(id))
		}
	}
	return h, gerr
}

// ReadPage fetches one page image from its owning shard without
// touching the session cache — the building block of the wire-level
// throughput experiments, with the same refresh-and-retry recovery
// as Get.
func (cc *ClusterClient) ReadPage(id page.ID) (uint64, *page.Page, error) {
	sh, err := cc.routeCheck(id)
	if err != nil {
		return 0, nil, err
	}
	ver, p, rerr := cc.sub(sh).ReadPage(localIDOf(id))
	if rerr != nil && transient(rerr) {
		if ferr := cc.RefreshTable(); ferr == nil {
			return cc.sub(sh).ReadPage(localIDOf(id))
		}
	}
	return ver, p, rerr
}

// Alloc allocates from the shard the rotating cursor points at,
// handing out allocChunk consecutive pages per shard so clustering
// subtrees built from consecutive allocations stay co-located.
func (cc *ClusterClient) Alloc(t page.Type) (page.ID, store.Handle, error) {
	n := cc.allocCursor.Add(1) - 1
	sh := int(n/allocChunk) % cc.ShardCount()
	id, h, err := cc.sub(sh).Alloc(t)
	if err != nil {
		return page.Invalid, nil, err
	}
	return globalID(sh, id), h, nil
}

// Free queues a page for release on its owning shard at the next
// commit touching that shard.
func (cc *ClusterClient) Free(id page.ID) error {
	sh, err := cc.routeCheck(id)
	if err != nil {
		return err
	}
	return cc.sub(sh).Free(localIDOf(id))
}

// Root reads a root slot. The root directory lives on shard 0; the
// IDs stored in it are cluster-wide, so a root can point anywhere.
func (cc *ClusterClient) Root(slot int) page.ID { return cc.sub(0).Root(slot) }

// SetRoot updates a root slot on shard 0.
func (cc *ClusterClient) SetRoot(slot int, id page.ID) { cc.sub(0).SetRoot(slot, id) }

// groupByShard buckets cluster-wide IDs into per-shard local IDs.
func (cc *ClusterClient) groupByShard(ids []page.ID) (map[int][]page.ID, error) {
	groups := make(map[int][]page.ID)
	for _, id := range ids {
		sh, err := cc.routeCheck(id)
		if err != nil {
			return nil, err
		}
		groups[sh] = append(groups[sh], localIDOf(id))
	}
	return groups, nil
}

// Prefetch warms every shard's cache with its slice of the listed
// pages, all shards fetching concurrently — one opGetPages frontier
// per shard instead of one per cluster.
func (cc *ClusterClient) Prefetch(ids []page.ID) error {
	groups, err := cc.groupByShard(ids)
	if err != nil {
		return err
	}
	if len(groups) == 1 {
		for sh, g := range groups {
			return cc.sub(sh).Prefetch(g)
		}
	}
	errCh := make(chan error, len(groups))
	var wg sync.WaitGroup
	for sh, g := range groups {
		wg.Add(1)
		go func(sh int, g []page.ID) {
			defer wg.Done()
			if err := cc.sub(sh).Prefetch(g); err != nil {
				errCh <- err
			}
		}(sh, g)
	}
	wg.Wait()
	close(errCh)
	return <-errCh
}

// PrefetchAsync starts one asynchronous frontier fetch per shard and
// returns a wait that joins them, reporting the first failure.
func (cc *ClusterClient) PrefetchAsync(ids []page.ID) (wait func() error) {
	groups, err := cc.groupByShard(ids)
	if err != nil {
		return func() error { return err }
	}
	waits := make([]func() error, 0, len(groups))
	for sh, g := range groups {
		waits = append(waits, cc.sub(sh).PrefetchAsync(g))
	}
	return func() error {
		var first error
		for _, w := range waits {
			if werr := w(); werr != nil && first == nil {
				first = werr
			}
		}
		return first
	}
}

// newToken draws a cross-shard commit token: the coordinator's shard
// ID in the top byte, 56 nonzero random bits below — nonzero so the
// untokened-commit sentinel (zero) is never drawn.
func (cc *ClusterClient) newToken(coord int) uint64 {
	cc.rngMu.Lock()
	defer cc.rngMu.Unlock()
	for {
		if t := cc.rng.Uint64() & (1<<shardShift - 1); t != 0 {
			return uint64(coord)<<shardShift | t
		}
	}
}

// Commit finishes the cluster-wide transaction. One-shard footprints
// take that shard's ordinary commit path; anything wider runs
// two-phase commit across the touched shards (see the package
// comment for the protocol and its ordering invariants). On
// ErrConflict every touched session has been reset; the caller
// re-runs its transaction as with a single server.
func (cc *ClusterClient) Commit() error {
	subs := cc.snapshotSubs()
	var parts, dirty []int
	for i, sub := range subs {
		r, w := sub.txnState()
		if r || w {
			parts = append(parts, i)
		}
		if w {
			dirty = append(dirty, i)
		}
	}
	if len(parts) == 0 {
		return nil
	}
	if len(parts) == 1 {
		// The whole footprint — reads included — is one shard: its own
		// optimistic validation covers everything, so the transaction
		// is indistinguishable from a single-server commit.
		cc.fastCommits.Add(1)
		return subs[parts[0]].Commit()
	}
	if len(dirty) == 0 {
		// Read-only across shards: each session takes its own
		// read-only commit path (which applies and validates nothing),
		// preserving single-server read-only semantics per shard.
		for _, i := range parts {
			if err := subs[i].Commit(); err != nil {
				return err
			}
		}
		return nil
	}

	coord := dirty[0]
	token := cc.newToken(coord)
	ordered := make([]int, 0, len(parts))
	ordered = append(ordered, coord)
	for _, i := range parts {
		if i != coord {
			ordered = append(ordered, i)
		}
	}
	// Phase one: prepare the coordinator first, then the participants.
	// Ordering invariant: a participant holding a prepare implies the
	// coordinator durably knows the transaction, so an in-doubt
	// participant can always get its answer (or a presumed abort) from
	// the coordinator.
	for _, i := range ordered {
		if err := subs[i].prepareShard(token); err != nil {
			cc.abortCluster(subs, token, ordered)
			if errors.Is(err, ErrConflict) {
				return ErrConflict
			}
			return err
		}
	}
	// Phase two, commit point: the coordinator's durable decide. If the
	// answer is lost in transit, ask what happened before giving up —
	// the decide may well have landed.
	if err := subs[coord].decideShard(token, true); err != nil {
		state, cerr := subs[coord].CommitCheck(token)
		switch {
		case cerr == nil && state == checkCommitted:
			// Committed; only the acknowledgement was lost.
		case cerr == nil && state == checkAborted:
			// The coordinator's resolver presumed abort before our
			// decide arrived (or the decide itself was refused).
			cc.abortCluster(subs, token, ordered)
			return ErrConflict
		default:
			// Unknown: the shard resolvers will settle the prepared
			// state either way; the sessions must not keep phantom
			// dirty pages while they do.
			for _, i := range ordered {
				subs[i].resetSession()
			}
			cc.crossAborts.Add(1)
			return fmt.Errorf("%w: cross-shard decide on shard %d: %v", ErrCommitUnknown, coord, err)
		}
		// The commit stood but the session missed its bookkeeping;
		// reset rather than guess at versions.
		subs[coord].resetSession()
	}
	cc.crossCommits.Add(1)
	for _, i := range ordered[1:] {
		if err := subs[i].decideShard(token, true); err != nil {
			// The decision is already durable at the coordinator: this
			// shard's server will learn it from its resolver. Only the
			// local session needs cleaning up.
			subs[i].resetSession()
		}
	}
	return nil
}

// abortCluster delivers an abort decision to every touched shard,
// coordinator first so the tombstone of record exists before any
// participant forgets: ordered[0] is the coordinator by construction.
// Wire failures are ignored — an unreachable shard's resolver will
// poll the coordinator's tombstone — but every local session is reset.
func (cc *ClusterClient) abortCluster(subs []*Client, token uint64, ordered []int) {
	for _, i := range ordered {
		subs[i].decideShard(token, false)
	}
	cc.crossAborts.Add(1)
}

// RefreshTable re-fetches the routing table from every reachable
// shard and adopts the newest, if it is newer than the one held.
// Tables with a non-newer epoch are counted stale and ignored, so a
// lagging shard cannot roll the client back to addresses that died.
func (cc *ClusterClient) RefreshTable() error {
	cc.refreshes.Add(1)
	subs := cc.snapshotSubs()
	curEpoch := cc.Epoch()
	var best RouteTable
	var lastErr error
	reachable := false
	for _, sub := range subs {
		epoch, addrs, err := sub.RouteTable()
		if err != nil {
			lastErr = err
			continue
		}
		reachable = true
		if epoch <= curEpoch {
			cc.staleTables.Add(1)
			continue
		}
		if epoch > best.Epoch {
			best = RouteTable{Epoch: epoch, Shards: addrs}
		}
	}
	if !reachable {
		return fmt.Errorf("remote: routing refresh: no shard reachable: %w", lastErr)
	}
	if best.Epoch == 0 {
		return nil // nothing newer anywhere; keep what we have
	}
	return cc.adoptTable(best)
}

// adoptTable swaps in a newer routing table, redialing only the shards
// whose address changed. The shard count is fixed for the life of a
// client: IDs already handed out embed shard numbers, so a table that
// renumbers the cluster cannot be adopted by a live session. All
// dialing and closing happens outside the table lock; the swap itself
// is atomic, and a dial failure adopts nothing.
func (cc *ClusterClient) adoptTable(t RouteTable) error {
	cc.mu.RLock()
	curEpoch := t.Epoch <= cc.table.Epoch
	curShards := append([]string(nil), cc.table.Shards...)
	cc.mu.RUnlock()
	if curEpoch {
		cc.staleTables.Add(1)
		return nil // raced with another refresh
	}
	if len(t.Shards) != len(curShards) {
		return fmt.Errorf("remote: routing table epoch %d renumbers the cluster (%d shards, have %d)",
			t.Epoch, len(t.Shards), len(curShards))
	}
	fresh := make(map[int]*Client)
	for i, addr := range t.Shards {
		if addr == curShards[i] {
			continue
		}
		sub, err := Dial(addr, cc.opts.Client)
		if err != nil {
			for _, f := range fresh {
				f.Close()
			}
			return fmt.Errorf("remote: adopt table epoch %d: dial shard %d at %s: %w", t.Epoch, i, addr, err)
		}
		fresh[i] = sub
	}
	var retired []*Client
	cc.mu.Lock()
	if t.Epoch <= cc.table.Epoch {
		// Lost the adoption race while dialing; the winner's table is
		// at least as new as ours.
		cc.mu.Unlock()
		cc.staleTables.Add(1)
		retired = make([]*Client, 0, len(fresh))
		for _, f := range fresh {
			retired = append(retired, f)
		}
	} else {
		for i, f := range fresh {
			retired = append(retired, cc.subs[i])
			cc.subs[i] = f
		}
		cc.table = RouteTable{Epoch: t.Epoch, Shards: append([]string(nil), t.Shards...)}
		cc.mu.Unlock()
	}
	for _, old := range retired {
		old.Close()
	}
	return nil
}

// Abort discards uncommitted state on every shard session.
func (cc *ClusterClient) Abort() error {
	var first error
	for _, sub := range cc.snapshotSubs() {
		if err := sub.Abort(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// DropCache empties every shard session's cache (the cold-run reset).
func (cc *ClusterClient) DropCache() error {
	var first error
	for _, sub := range cc.snapshotSubs() {
		if err := sub.DropCache(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

// CacheStats sums the per-shard session cache counters.
func (cc *ClusterClient) CacheStats() (hits, misses, reads uint64) {
	for _, sub := range cc.snapshotSubs() {
		h, m, r := sub.CacheStats()
		hits, misses, reads = hits+h, misses+m, reads+r
	}
	return hits, misses, reads
}

// CommitStats sums acknowledged commits and validation conflicts
// across the shard sessions.
func (cc *ClusterClient) CommitStats() (commits, conflicts uint64) {
	for _, sub := range cc.snapshotSubs() {
		c, f := sub.CommitStats()
		commits, conflicts = commits+c, conflicts+f
	}
	return commits, conflicts
}

// RetryStats sums the per-shard fault-tolerance counters.
func (cc *ClusterClient) RetryStats() RetryStats {
	var out RetryStats
	for _, sub := range cc.snapshotSubs() {
		rs := sub.RetryStats()
		out.Reconnects += rs.Reconnects
		out.Retries += rs.Retries
		out.Downgrades += rs.Downgrades
		out.CommitChecks += rs.CommitChecks
		out.CommitResends += rs.CommitResends
		out.CommitUnknowns += rs.CommitUnknowns
		out.CorruptRefetches += rs.CorruptRefetches
	}
	return out
}

// Close terminates every shard session.
func (cc *ClusterClient) Close() error {
	var first error
	for _, sub := range cc.snapshotSubs() {
		if sub == nil {
			continue
		}
		if err := sub.Close(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

var _ store.Space = (*ClusterClient)(nil)
