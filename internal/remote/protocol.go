// Package remote implements the workstation/server architecture of
// requirement R6: a TCP page server in front of a local page store,
// and a client that satisfies the same Space interface the backends
// run on.
//
// The client keeps its own buffer pool — the "workstation memory" of
// the paper. A cold run (client cache dropped) fetches every page from
// the server, which is precisely the cold-run cost §6's protocol
// isolates; warm runs never leave the workstation.
//
// Concurrency control is optimistic (R8), matching the systems the
// paper measured: clients track the version of every page they read
// and ship their read set with the commit; the server validates that
// no read page changed and applies the write set atomically, or
// rejects with ErrConflict and the client retries with fresh caches
// (R9's cooperating-users model).
package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
)

// Protocol opcodes (client → server).
const (
	opGetPage     = 1 // pageID u64 → version u64, image
	opAlloc       = 2 // pageType u8 → pageID u64
	opRoots       = 3 // → roots version u64, commit seq u64, NumRoots × u64
	opCommit      = 4 // token u64, snapshot u64, read set, write set, root updates, frees → ok (commit seq u64)/conflict
	opDropDead    = 5 //hyperlint:allow opcodes,wiresym -- reserved fault-injection hook, intentionally unwired
	opStats       = 6 // → server stats
	opPing        = 7 // → ok
	opGetPages    = 8 // count u32, count × pageID u64 → count × (version u64, image)
	opCommitCheck = 9 // token u64 → state u8 (commit-uncertainty resolution; see checkUnknown)

	// Cluster opcodes. opPrepare carries the exact opCommit payload but
	// stages it durably in the prepared state instead of applying it
	// (the 2PC yes-vote); opDecide resolves a prepared token either
	// way; opRouteTable serves the shard cluster's versioned routing
	// table so clients can discover topology changes from any shard.
	opRouteTable = 10 // → epoch u64, count u32, count × (len u16, addr)
	opPrepare    = 11 // same payload as opCommit → ok/conflict (2PC vote)
	opDecide     = 12 // token u64, commit u8 → ok (commit: seq u64)/conflict
)

// opCommitCheck answer states: the token's transaction is not known to
// have been decided (keep waiting, or resend a plain commit), is
// durably applied, or is durably aborted.
const (
	checkUnknown   = 0
	checkCommitted = 1
	checkAborted   = 2
)

// Response status codes (server → client).
const (
	statusOK         = 0
	statusError      = 1 // server-side fault while executing the request
	statusConflict   = 2
	statusBadRequest = 3 // client-caused: malformed frame or unknown opcode
	statusCorrupt    = 4 // a page image failed validation on the server's disk
)

// ErrConflict is returned by Client.Commit when optimistic validation
// failed: some page the client read was modified by another committed
// transaction. The caller drops its caches and retries.
var ErrConflict = errors.New("remote: optimistic validation failed (read set stale)")

// ErrCommitUnknown is returned by Client.Commit when the connection
// died with a commit in flight and the outcome could not be
// re-verified within the retry budget: the server may or may not have
// applied the transaction. The caller must treat the commit as
// uncertain and re-verify application state before resubmitting —
// blind resubmission could apply the transaction twice.
var ErrCommitUnknown = errors.New("remote: commit outcome unknown (connection lost mid-commit)")

// ErrClosed is returned from operations on a Client after Close.
var ErrClosed = errors.New("remote: client is closed")

// ServerError is a failure reported by the server itself: the request
// crossed the network, the server executed (or rejected) it, and sent
// this answer back. Server errors are definite outcomes and are never
// retried, unlike transport errors.
type ServerError struct {
	// BadRequest marks client-caused failures (malformed frame,
	// unknown opcode) as opposed to server-side faults.
	BadRequest bool
	Msg        string
}

func (e *ServerError) Error() string {
	if e.BadRequest {
		return "remote: server rejected request: " + e.Msg
	}
	return "remote: server error: " + e.Msg
}

// statusCorrupt body: pageID u64 | seq u64 | detail string. The client
// reconstructs the storage layer's typed *pager.ErrCorruptPage from it,
// so errors.As works identically against a local store and a remote
// one. Corruption is a definite server-side answer — the page's stored
// image is damaged, and resending the request cannot help — so the
// decoded error is never retried (see transient).
func appendCorrupt(b []byte, ce *pager.ErrCorruptPage) []byte {
	b = binary.LittleEndian.AppendUint64(b, uint64(ce.ID))
	b = binary.LittleEndian.AppendUint64(b, ce.Seq)
	return append(b, ce.Detail...)
}

func decodeCorrupt(body []byte) error {
	if len(body) < 16 {
		return &ServerError{Msg: "malformed corrupt-page response"}
	}
	return &pager.ErrCorruptPage{
		ID:     page.ID(binary.LittleEndian.Uint64(body)),
		Seq:    binary.LittleEndian.Uint64(body[8:]),
		Detail: string(body[16:]),
	}
}

const maxFrame = 64 << 20 // sanity bound on frame sizes

// Multiplexed framing: after the u32 length prefix, every frame — in
// both directions — opens with a u64 request ID. The client assigns
// IDs (monotonically per connection, never zero), pumps many requests
// down one connection without waiting, and routes each response back
// to its requester by ID; the server dispatches each request on its
// own goroutine and may answer out of order.
//
// Request:  u32 len | u64 id | u8 opcode | body
// Response: u32 len | u64 id | u8 status | body
//
// ID zero is reserved for connection-level errors the server raises
// outside any request — e.g. the "server busy" refusal at the
// connection limit — which the client treats as fatal to the whole
// connection rather than to one request.
const muxHeaderLen = 8

// connReqID is the reserved request ID for connection-level errors.
const connReqID = 0

// frameID reads the request ID that opens every multiplexed frame.
func frameID(frame []byte) uint64 {
	return binary.LittleEndian.Uint64(frame)
}

// appendFrameID appends the request ID that opens every multiplexed
// frame. The opcodes analyzer holds this (and frameID) to exactly one
// server-side and one client-side call, so the two ends of the framing
// cannot drift apart.
func appendFrameID(b []byte, id uint64) []byte {
	return binary.LittleEndian.AppendUint64(b, id)
}

// maxBatchPages bounds one opGetPages request so its response — one
// version and one page image per id, plus the status byte — always
// fits a frame. Clients chunk larger prefetches.
const maxBatchPages = (maxFrame - 8) / (8 + page.Size)

// writeFrame sends one length-prefixed frame.
func writeFrame(w io.Writer, payload []byte) error {
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// readFrame receives one length-prefixed frame.
func readFrame(r io.Reader) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n > maxFrame {
		return nil, fmt.Errorf("remote: oversized frame (%d bytes)", n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		return nil, err
	}
	return payload, nil
}

// commitReq is the decoded payload of an opCommit frame.
type commitReq struct {
	// token identifies this commit attempt so a resend after a lost
	// response is recognized and applied at most once. Zero means
	// untokened (no dedup, legacy framing).
	token uint64
	// snapshot is the server commit sequence the transaction's reads
	// are based on (learned from the roots fetch or the previous commit
	// response). If it still equals the server's current sequence at
	// validation time, nothing has committed since the client's caches
	// were known-current, and per-page read-set validation is skipped.
	snapshot uint64
	reads    []readEntry
	writes   []writeEntry
	roots    []rootEntry
	frees    []page.ID
}

type readEntry struct {
	id      page.ID
	version uint64
}

type writeEntry struct {
	id    page.ID
	image []byte // page.Size bytes
}

type rootEntry struct {
	slot int
	id   page.ID
}

func encodeCommit(req *commitReq) []byte {
	size := 1 + 8 + 8 + 4 + 16*len(req.reads) + 4 + len(req.writes)*(8+page.Size) + 4 + 12*len(req.roots) + 4 + 8*len(req.frees)
	return appendCommit(make([]byte, 0, size), req)
}

// appendCommit appends the opCommit payload to b (the client reuses
// one grow-only request buffer across calls).
func appendCommit(b []byte, req *commitReq) []byte {
	b = append(b, opCommit)
	b = binary.LittleEndian.AppendUint64(b, req.token)
	b = binary.LittleEndian.AppendUint64(b, req.snapshot)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.reads)))
	for _, r := range req.reads {
		b = binary.LittleEndian.AppendUint64(b, uint64(r.id))
		b = binary.LittleEndian.AppendUint64(b, r.version)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.writes)))
	for _, w := range req.writes {
		b = binary.LittleEndian.AppendUint64(b, uint64(w.id))
		b = append(b, w.image...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.roots)))
	for _, r := range req.roots {
		b = binary.LittleEndian.AppendUint32(b, uint32(r.slot))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.id))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.frees)))
	for _, id := range req.frees {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	return b
}

func encodePrepare(req *commitReq) []byte {
	size := 1 + 8 + 8 + 4 + 16*len(req.reads) + 4 + len(req.writes)*(8+page.Size) + 4 + 12*len(req.roots) + 4 + 8*len(req.frees)
	return appendPrepare(make([]byte, 0, size), req)
}

// appendPrepare appends the opPrepare payload: field for field the
// opCommit payload (decoded by the same decodeCommit), under the vote
// opcode. The writes are spelled out rather than delegated so the wire
// linter can hold this encoder to the shared decoder script.
func appendPrepare(b []byte, req *commitReq) []byte {
	b = append(b, opPrepare)
	b = binary.LittleEndian.AppendUint64(b, req.token)
	b = binary.LittleEndian.AppendUint64(b, req.snapshot)
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.reads)))
	for _, r := range req.reads {
		b = binary.LittleEndian.AppendUint64(b, uint64(r.id))
		b = binary.LittleEndian.AppendUint64(b, r.version)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.writes)))
	for _, w := range req.writes {
		b = binary.LittleEndian.AppendUint64(b, uint64(w.id))
		b = append(b, w.image...)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.roots)))
	for _, r := range req.roots {
		b = binary.LittleEndian.AppendUint32(b, uint32(r.slot))
		b = binary.LittleEndian.AppendUint64(b, uint64(r.id))
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(len(req.frees)))
	for _, id := range req.frees {
		b = binary.LittleEndian.AppendUint64(b, uint64(id))
	}
	return b
}

// appendDecide appends an opDecide request: the prepared token and the
// coordinator's verdict.
func appendDecide(b []byte, token uint64, commit bool) []byte {
	flag := byte(0)
	if commit {
		flag = 1
	}
	b = append(b, opDecide)
	b = binary.LittleEndian.AppendUint64(b, token)
	b = append(b, flag)
	return b
}

// appendCommitCheck appends an opCommitCheck request — the shared
// encode site for both the client's commit-uncertainty resolution and
// the server's in-doubt resolver polling a coordinator.
func appendCommitCheck(b []byte, token uint64) []byte {
	b = append(b, opCommitCheck)
	b = binary.LittleEndian.AppendUint64(b, token)
	return b
}

// decodeRouteTable decodes an opRouteTable response body.
func decodeRouteTable(body []byte) (epoch uint64, addrs []string, err error) {
	if len(body) < 12 {
		return 0, nil, errors.New("remote: truncated route-table response")
	}
	epoch = binary.LittleEndian.Uint64(body)
	n := binary.LittleEndian.Uint32(body[8:])
	off := 12
	for i := uint32(0); i < n; i++ {
		if off+2 > len(body) {
			return 0, nil, errors.New("remote: truncated route-table response")
		}
		l := int(binary.LittleEndian.Uint16(body[off:]))
		off += 2
		if off+l > len(body) {
			return 0, nil, errors.New("remote: truncated route-table response")
		}
		addrs = append(addrs, string(body[off:off+l]))
		off += l
	}
	if off != len(body) {
		return 0, nil, errors.New("remote: trailing bytes in route-table response")
	}
	return epoch, addrs, nil
}

func decodeCommit(b []byte) (*commitReq, error) {
	req := &commitReq{}
	off := 0
	u32 := func() (uint32, error) {
		if off+4 > len(b) {
			return 0, errors.New("remote: truncated commit request")
		}
		v := binary.LittleEndian.Uint32(b[off:])
		off += 4
		return v, nil
	}
	u64 := func() (uint64, error) {
		if off+8 > len(b) {
			return 0, errors.New("remote: truncated commit request")
		}
		v := binary.LittleEndian.Uint64(b[off:])
		off += 8
		return v, nil
	}
	tok, err := u64()
	if err != nil {
		return nil, err
	}
	req.token = tok
	snap, err := u64()
	if err != nil {
		return nil, err
	}
	req.snapshot = snap
	nr, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nr; i++ {
		id, err := u64()
		if err != nil {
			return nil, err
		}
		ver, err := u64()
		if err != nil {
			return nil, err
		}
		req.reads = append(req.reads, readEntry{page.ID(id), ver})
	}
	nw, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nw; i++ {
		id, err := u64()
		if err != nil {
			return nil, err
		}
		if off+page.Size > len(b) {
			return nil, errors.New("remote: truncated page image")
		}
		req.writes = append(req.writes, writeEntry{page.ID(id), b[off : off+page.Size]})
		off += page.Size
	}
	nro, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nro; i++ {
		slot, err := u32()
		if err != nil {
			return nil, err
		}
		id, err := u64()
		if err != nil {
			return nil, err
		}
		req.roots = append(req.roots, rootEntry{int(slot), page.ID(id)})
	}
	nf, err := u32()
	if err != nil {
		return nil, err
	}
	for i := uint32(0); i < nf; i++ {
		id, err := u64()
		if err != nil {
			return nil, err
		}
		req.frees = append(req.frees, page.ID(id))
	}
	if off != len(b) {
		return nil, errors.New("remote: trailing bytes in commit request")
	}
	return req, nil
}
