package remote

import (
	"errors"
	"fmt"
	"path/filepath"
	"testing"
	"time"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// startShardAt opens (or reopens, for restart tests) a shard store in
// dir and serves it. The caller owns close order; the registered
// cleanup only back-stops tests that bail early.
func startShardAt(t *testing.T, dir string, cfg func(*Server)) (string, *Server, *store.Store) {
	t.Helper()
	st, err := store.Open(filepath.Join(dir, "shard.db"), &store.Options{TokenKeep: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	if cfg != nil {
		cfg(srv)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return addr.String(), srv, st
}

// startCluster spins up n shards that all serve the same epoch-1
// routing table and returns a cluster client over them.
func startCluster(t *testing.T, n int) (*ClusterClient, []*Server) {
	t.Helper()
	addrs := make([]string, n)
	srvs := make([]*Server, n)
	for i := 0; i < n; i++ {
		addr, srv, _ := startShardAt(t, t.TempDir(), func(s *Server) {
			s.SetShardID(i)
		})
		addrs[i], srvs[i] = addr, srv
	}
	for _, srv := range srvs {
		srv.SetRouteTable(1, addrs)
	}
	cc, err := DialClusterTable(RouteTable{Epoch: 1, Shards: addrs}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })
	return cc, srvs
}

func waitFor(t *testing.T, d time.Duration, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal(msg)
}

func TestClusterEmptyTableRejected(t *testing.T) {
	if _, err := DialClusterTable(RouteTable{}, ClusterOptions{}); err == nil {
		t.Fatal("empty routing table accepted")
	}
	// A standalone server never given a table cannot anchor a cluster
	// either: its opRouteTable answer is empty.
	addr, _ := startServer(t)
	if _, err := DialCluster(addr, ClusterOptions{}); err == nil {
		t.Fatal("bootstrap from a table-less server accepted")
	}
}

// TestClusterSingleShardByteIdentical pins the degenerate
// configuration: a one-shard cluster must be indistinguishable from a
// standalone server — same page IDs handed out, same roots, same
// bytes on disk — because shard 0's global IDs equal its local IDs.
func TestClusterSingleShardByteIdentical(t *testing.T) {
	// The same workload against a plain client and a one-shard cluster.
	workload := func(sp store.Space) ([]page.ID, error) {
		ids := make([]page.ID, 3)
		for i := range ids {
			id, h, err := sp.Alloc(page.TypeSlotted)
			if err != nil {
				return nil, err
			}
			copy(h.Page().Payload(), fmt.Sprintf("payload %d", i))
			h.MarkDirty()
			h.Release()
			ids[i] = id
		}
		sp.SetRoot(0, ids[0])
		sp.SetRoot(1, ids[2])
		return ids, sp.Commit()
	}

	addrA, _ := startServer(t)
	plain := dial(t, addrA)
	idsA, err := workload(plain)
	if err != nil {
		t.Fatal(err)
	}

	cc, _ := startCluster(t, 1)
	idsB, err := workload(cc)
	if err != nil {
		t.Fatal(err)
	}

	for i := range idsA {
		if idsA[i] != idsB[i] {
			t.Fatalf("alloc %d: plain id %d, cluster id %d", i, idsA[i], idsB[i])
		}
	}
	// Read back through fresh sessions and compare the full images.
	checkA := dial(t, addrA)
	checkB, err := DialClusterTable(RouteTable{Epoch: 1, Shards: []string{cc.table.Shards[0]}}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer checkB.Close()
	for slot := 0; slot < 2; slot++ {
		if ra, rb := checkA.Root(slot), checkB.Root(slot); ra != rb {
			t.Fatalf("root %d: plain %d, cluster %d", slot, ra, rb)
		}
	}
	for _, id := range idsA {
		ha, err := checkA.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		hb, err := checkB.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if *ha.Page() != *hb.Page() {
			t.Fatalf("page %d differs between plain server and one-shard cluster", id)
		}
		ha.Release()
		hb.Release()
	}
	if fast := cc.Stats().FastCommits; fast != 1 {
		t.Fatalf("one-shard commit took the slow path (fast commits = %d)", fast)
	}
}

func TestClusterStaleEpochRejected(t *testing.T) {
	addr, srv, _ := startShardAt(t, t.TempDir(), nil)
	srv.SetRouteTable(1, []string{addr})
	// The client holds a newer epoch than the shard serves.
	cc, err := DialClusterTable(RouteTable{Epoch: 5, Shards: []string{addr}}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if err := cc.RefreshTable(); err != nil {
		t.Fatal(err)
	}
	if got := cc.Epoch(); got != 5 {
		t.Fatalf("stale table adopted: epoch rolled back to %d", got)
	}
	st := cc.Stats()
	if st.Refreshes != 1 || st.StaleTables != 1 {
		t.Fatalf("refreshes=%d staleTables=%d, want 1 and 1", st.Refreshes, st.StaleTables)
	}
}

// TestClusterShardLossRefetchesTable kills a shard, restarts it at a
// new address, and has the surviving shard publish the new table; a
// read routed at the dead address must recover by re-fetching the
// table and retrying.
func TestClusterShardLossRefetchesTable(t *testing.T) {
	dir0, dir1 := t.TempDir(), t.TempDir()
	addr0, srv0, _ := startShardAt(t, dir0, func(s *Server) { s.SetShardID(0) })
	addr1, srv1, st1 := startShardAt(t, dir1, func(s *Server) { s.SetShardID(1) })
	srv0.SetRouteTable(1, []string{addr0, addr1})
	srv1.SetRouteTable(1, []string{addr0, addr1})

	cc, err := DialClusterTable(RouteTable{Epoch: 1, Shards: []string{addr0, addr1}},
		ClusterOptions{Client: ClientOptions{RetryLimit: -1, RequestTimeout: 500 * time.Millisecond}})
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()

	// Fill shard 0's allocation chunk and land one page on shard 1.
	var last page.ID
	for i := 0; i <= allocChunk; i++ {
		id, h, err := cc.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		copy(h.Page().Payload(), "on shard one")
		h.MarkDirty()
		h.Release()
		last = id
	}
	if shardOfID(last) != 1 {
		t.Fatalf("allocation %d landed on shard %d, want 1", uint64(last), shardOfID(last))
	}
	if err := cc.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := cc.DropCache(); err != nil {
		t.Fatal(err)
	}

	// Shard 1 dies and comes back elsewhere; shard 0 publishes epoch 2.
	srv1.Close()
	st1.Close()
	addr1b, srv1b, _ := startShardAt(t, dir1, func(s *Server) { s.SetShardID(1) })
	srv0.SetRouteTable(2, []string{addr0, addr1b})
	srv1b.SetRouteTable(2, []string{addr0, addr1b})

	h, err := cc.Get(last)
	if err != nil {
		t.Fatalf("read after shard move did not recover: %v", err)
	}
	if string(h.Page().Payload()[:12]) != "on shard one" {
		t.Fatal("recovered read returned wrong bytes")
	}
	h.Release()
	if got := cc.Epoch(); got != 2 {
		t.Fatalf("client epoch = %d, want 2 after the refresh", got)
	}
	if cc.Stats().Refreshes == 0 {
		t.Fatal("recovery did not go through a table refresh")
	}
}

func TestClusterCrossShardCommit(t *testing.T) {
	cc, srvs := startCluster(t, 2)

	// Pages on both shards, written in one transaction.
	var ids []page.ID
	for i := 0; i <= allocChunk; i++ {
		id, h, err := cc.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		copy(h.Page().Payload(), fmt.Sprintf("cross %d", shardOfID(id)))
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
	}
	first, last := ids[0], ids[len(ids)-1]
	if shardOfID(first) == shardOfID(last) {
		t.Fatal("workload did not span two shards")
	}
	cc.SetRoot(0, last) // a root on shard 0 naming a shard-1 page
	if err := cc.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.CrossCommits != 1 || st.FastCommits != 0 {
		t.Fatalf("cross=%d fast=%d, want 1 and 0", st.CrossCommits, st.FastCommits)
	}
	for i, srv := range srvs {
		prepares, commits, aborts, _ := srv.CrossCommitStats()
		if prepares != 1 || commits != 1 || aborts != 0 {
			t.Fatalf("shard %d: prepares=%d commits=%d aborts=%d", i, prepares, commits, aborts)
		}
		if n := srv.PreparedCount(); n != 0 {
			t.Fatalf("shard %d: %d transactions left in doubt", i, n)
		}
	}

	// A fresh cluster session observes the committed state.
	check, err := DialClusterTable(RouteTable{Epoch: 1, Shards: append([]string(nil), cc.table.Shards...)}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer check.Close()
	if got := check.Root(0); got != last {
		t.Fatalf("root = %#x, want %#x", uint64(got), uint64(last))
	}
	for _, id := range []page.ID{first, last} {
		h, err := check.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		want := fmt.Sprintf("cross %d", shardOfID(id))
		if string(h.Page().Payload()[:len(want)]) != want {
			t.Fatalf("page %#x lost its cross-shard write", uint64(id))
		}
		h.Release()
	}

	// A follow-up touching only shard 0 takes the fast path.
	h, err := cc.Get(first)
	if err != nil {
		t.Fatal(err)
	}
	h.Page().Payload()[0] = 'X'
	h.MarkDirty()
	h.Release()
	if err := cc.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := cc.Stats(); st.FastCommits != 1 {
		t.Fatalf("single-shard follow-up fast commits = %d, want 1", st.FastCommits)
	}
}

func TestClusterCrossShardConflict(t *testing.T) {
	cc, _ := startCluster(t, 2)

	// Seed one committed page per shard.
	var p0, p1 page.ID
	for i := 0; i <= allocChunk; i++ {
		id, h, err := cc.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.MarkDirty()
		h.Release()
		if i == 0 {
			p0 = id
		}
		p1 = id
	}
	if err := cc.Commit(); err != nil {
		t.Fatal(err)
	}

	rival, err := DialClusterTable(RouteTable{Epoch: 1, Shards: append([]string(nil), cc.table.Shards...)}, ClusterOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer rival.Close()

	// Both sessions read and modify both pages before either commits.
	touch := func(c *ClusterClient, v byte) {
		for _, id := range []page.ID{p0, p1} {
			h, err := c.Get(id)
			if err != nil {
				t.Fatal(err)
			}
			h.Page().Payload()[0] = v
			h.MarkDirty()
			h.Release()
		}
	}
	touch(cc, 1)
	touch(rival, 2)
	if err := cc.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	if err := rival.Commit(); !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	if rival.Stats().CrossAborts == 0 {
		t.Fatal("conflict did not count a cross-shard abort")
	}
	// The loser retries on fresh caches and succeeds.
	touch(rival, 3)
	if err := rival.Commit(); err != nil {
		t.Fatalf("retry after cross-shard conflict: %v", err)
	}
	h, err := rival.Get(p1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if h.Page().Payload()[0] != 3 {
		t.Fatalf("final value = %d, want the retry's 3", h.Page().Payload()[0])
	}
}

// TestClusterInDoubtParticipantResolved crashes a participant between
// its prepare and its decide. After the restart its resolver must
// learn the commit decision from the coordinator and apply the staged
// writes — exactly once, with nothing left in doubt.
func TestClusterInDoubtParticipantResolved(t *testing.T) {
	dir0, dir1 := t.TempDir(), t.TempDir()
	addr0, srv0, _ := startShardAt(t, dir0, func(s *Server) { s.SetShardID(0) })
	addr1, srv1, st1 := startShardAt(t, dir1, func(s *Server) { s.SetShardID(1) })
	srv0.SetRouteTable(1, []string{addr0, addr1})
	srv1.SetRouteTable(1, []string{addr0, addr1})

	// Drive the phases by hand on plain per-shard sessions.
	c0, c1 := dial(t, addr0), dial(t, addr1)
	write := func(c *Client, text string) page.ID {
		id, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		copy(h.Page().Payload(), text)
		h.MarkDirty()
		h.Release()
		return id
	}
	write(c0, "coordinator half")
	p1 := write(c1, "participant half")

	token := uint64(0)<<shardShift | 0x1234 // coordinated by shard 0
	if err := c0.prepareShard(token); err != nil {
		t.Fatal(err)
	}
	if err := c1.prepareShard(token); err != nil {
		t.Fatal(err)
	}
	if err := c0.decideShard(token, true); err != nil {
		t.Fatal(err)
	}

	// The participant crashes before its decide arrives.
	srv1.Close()
	st1.Close()
	addr1b, srv1b, _ := startShardAt(t, dir1, func(s *Server) {
		s.SetShardID(1)
		s.SetResolver(20*time.Millisecond, 30*time.Millisecond)
	})
	srv1b.SetRouteTable(2, []string{addr0, addr1b})
	if n := srv1b.PreparedCount(); n != 1 {
		t.Fatalf("restarted participant recovered %d prepared txns, want 1", n)
	}

	waitFor(t, 5*time.Second, func() bool { return srv1b.PreparedCount() == 0 },
		"participant resolver never settled the in-doubt transaction")
	if _, _, _, resolved := srv1b.CrossCommitStats(); resolved != 1 {
		t.Fatalf("resolved count = %d, want 1", resolved)
	}

	// The staged write is applied, exactly once, and visible.
	check := dial(t, addr1b)
	h, err := check.Get(p1)
	if err != nil {
		t.Fatal(err)
	}
	defer h.Release()
	if string(h.Page().Payload()[:16]) != "participant half" {
		t.Fatal("resolver did not apply the coordinator's commit decision")
	}
}

// TestClusterPresumedAbort ages out a coordinator's own prepared
// transaction whose client vanished before deciding: the resolver
// must abort it with a durable tombstone and answer later status
// polls with that decision.
func TestClusterPresumedAbort(t *testing.T) {
	addr, srv := startServerWith(t, func(s *Server) {
		s.SetShardID(0)
		s.SetResolver(20*time.Millisecond, 30*time.Millisecond)
	})
	c := dial(t, addr)
	id, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "never decided")
	h.MarkDirty()
	h.Release()
	token := uint64(0)<<shardShift | 0x5678
	if err := c.prepareShard(token); err != nil {
		t.Fatal(err)
	}
	if n := srv.PreparedCount(); n != 1 {
		t.Fatalf("prepared count = %d, want 1", n)
	}

	waitFor(t, 5*time.Second, func() bool { return srv.PreparedCount() == 0 },
		"coordinator never presumed abort for its own stale prepare")
	state, err := c.CommitCheck(token)
	if err != nil {
		t.Fatal(err)
	}
	if state != checkAborted {
		t.Fatalf("commit check = %d, want aborted (%d)", state, checkAborted)
	}
	// The staged image must not have leaked into committed state.
	probe := dial(t, addr)
	h2, err := probe.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if string(h2.Page().Payload()[:13]) == "never decided" {
		t.Fatal("aborted stash leaked into the committed page")
	}
}
