package remote

import (
	"encoding/binary"
	"errors"
	"testing"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/store"
	"hypermodel/internal/storage/vfs"
)

// startMemServer spins a page server over a store on an in-memory FS,
// so tests can corrupt the server's "disk" underneath it.
func startMemServer(t *testing.T) (string, *Server, *store.Store, *vfs.MemFS) {
	t.Helper()
	fs := vfs.NewMem()
	st, err := store.Open("db", &store.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return addr.String(), srv, st, fs
}

// seedPages allocates n pages server-side (payload = 100+i), makes
// them durable, and drops the server's cache so fetches hit the disk
// images.
func seedPages(t *testing.T, st *store.Store, n int) []page.ID {
	t.Helper()
	var ids []page.ID
	for i := 0; i < n; i++ {
		id, h, err := st.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		binary.LittleEndian.PutUint64(h.Page().Payload(), uint64(100+i))
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
	}
	if err := st.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := st.DropCache(); err != nil {
		t.Fatal(err)
	}
	return ids
}

// corruptStorePage flips bytes inside one page of the server's disk
// image (mirrors the store package's test helper).
func corruptStorePage(t *testing.T, fs *vfs.MemFS, id page.ID, off int64, n int) {
	t.Helper()
	data, err := fs.ReadFile("db")
	if err != nil {
		t.Fatal(err)
	}
	base := int64(id)*page.Size + off
	for i := int64(0); i < int64(n); i++ {
		data[base+i] ^= 0xA5
	}
	if err := fs.WriteFile("db", data); err != nil {
		t.Fatal(err)
	}
}

// TestServerDiskCorruptionSurfacesTyped: a page damaged on the
// server's disk comes back over the wire as the same typed
// *pager.ErrCorruptPage a local store raises — right page, right
// sequence — and the connection survives to serve the undamaged
// neighbor. The remote tier is the fourth read path of the corruption
// taxonomy.
func TestServerDiskCorruptionSurfacesTyped(t *testing.T) {
	addr, srv, st, fs := startMemServer(t)
	ids := seedPages(t, st, 3)
	corruptStorePage(t, fs, ids[1], 300, 16)

	c := dial(t, addr)
	_, err := c.Get(ids[1])
	var ce *pager.ErrCorruptPage
	if !errors.As(err, &ce) {
		t.Fatalf("corrupt page surfaced as %T (%v), want *pager.ErrCorruptPage", err, err)
	}
	if ce.ID != ids[1] {
		t.Fatalf("taxonomy names page %d, damage is on %d", ce.ID, ids[1])
	}
	if ce.Seq != st.Seq() {
		t.Fatalf("taxonomy seq %d, want committed seq %d", ce.Seq, st.Seq())
	}
	if srv.CorruptServed() == 0 {
		t.Fatal("server did not count the corrupt answer")
	}

	// The connection is still healthy: same session reads the neighbor.
	h, err := c.Get(ids[0])
	if err != nil {
		t.Fatalf("undamaged neighbor unreadable after corrupt answer: %v", err)
	}
	if got := binary.LittleEndian.Uint64(h.Page().Payload()); got != 100 {
		t.Fatalf("neighbor holds %d, want 100", got)
	}
	h.Release()
	if err := c.Ping(); err != nil {
		t.Fatalf("connection dead after corrupt answer: %v", err)
	}
	if st := c.RetryStats(); st.Reconnects != 0 {
		t.Fatalf("client reconnected %d times over a definite answer", st.Reconnects)
	}

	// And the operator story: Scrub on the server store pinpoints it.
	rep := st.Scrub()
	if len(rep.Damaged) != 1 || rep.Damaged[0].ID != ids[1] {
		t.Fatalf("scrub did not pinpoint page %d:\n%s", ids[1], rep)
	}
}

// TestBatchFetchDegradesPerPage: one corrupt page inside an opGetPages
// batch fails only itself. The server refuses the whole batch frame
// (typed), the client falls back to per-page fetches for that call —
// installing every healthy page, surfacing the typed error for the
// damaged one — and batching stays enabled for later calls.
func TestBatchFetchDegradesPerPage(t *testing.T) {
	addr, _, st, fs := startMemServer(t)
	ids := seedPages(t, st, 4)
	corruptStorePage(t, fs, ids[3], 200, 8)

	c := dial(t, addr)
	err := c.Prefetch(ids)
	var ce *pager.ErrCorruptPage
	if !errors.As(err, &ce) {
		t.Fatalf("prefetch over damage returned %T (%v), want *pager.ErrCorruptPage", err, err)
	}
	if ce.ID != ids[3] {
		t.Fatalf("taxonomy names page %d, damage is on %d", ce.ID, ids[3])
	}
	// The healthy pages made it into the cache on the per-page fallback.
	if missing := c.missingOf(ids[:3]); len(missing) != 0 {
		t.Fatalf("healthy pages not installed: %v still missing", missing)
	}
	if !c.batchOK.Load() {
		t.Fatal("corruption permanently disabled batching")
	}
	rs := c.RetryStats()
	if rs.Downgrades == 0 {
		t.Fatal("per-page fallback not counted")
	}

	// Later batches still fly: drop and prefetch only healthy pages.
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	_, batchedBefore := c.FrameStats()
	if err := c.Prefetch(ids[:3]); err != nil {
		t.Fatalf("healthy prefetch after degradation: %v", err)
	}
	if _, batched := c.FrameStats(); batched == batchedBefore {
		t.Fatal("client stopped batching after a corrupt batch")
	}
}

// TestTransitCorruptionRefetches: bytes damaged between the server's
// memory and the client's (intact framing, corrupt payload) are caught
// by receive-side validation and fetched again — the page never enters
// the cache bad, and the retry is invisible to the caller.
func TestTransitCorruptionRefetches(t *testing.T) {
	srv := newBackedServer(t)
	corrupted := false
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		if !corrupted && len(req) > 0 && req[0] == opGetPage {
			corrupted = true
			return scriptStep{act: actCorrupt}
		}
		return scriptStep{}
	})

	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint64(h.Page().Payload(), 777)
	h.MarkDirty()
	h.Release()
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}

	h, err = c.Get(id) // first fetch arrives corrupted, refetch succeeds
	if err != nil {
		t.Fatalf("Get through transit corruption: %v", err)
	}
	defer h.Release()
	if got := binary.LittleEndian.Uint64(h.Page().Payload()); got != 777 {
		t.Fatalf("page holds %d after refetch, want 777", got)
	}
	rs := c.RetryStats()
	if rs.CorruptRefetches != 1 {
		t.Fatalf("CorruptRefetches = %d, want 1", rs.CorruptRefetches)
	}
}
