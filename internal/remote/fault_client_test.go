package remote

import (
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/fault"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// scriptAction tells the scripted server what to do with one request
// frame.
type scriptAction int

const (
	actServe      scriptAction = iota // dispatch and answer normally
	actDropBefore                     // close the connection without dispatching
	actDropAfter                      // dispatch, then close without answering
	actReject                         // answer statusError without dispatching
	actSwallow                        // dispatch but never answer (hang the client)
	actTruncate                       // dispatch, send truncateAt bytes of the answer, close
	actCorrupt                        // dispatch, flip the answer's last payload byte, send
)

type scriptStep struct {
	act        scriptAction
	truncateAt int
}

// scriptedServer fronts a real *Server with a per-frame script indexed
// by a global frame counter (across reconnects), so tests can stage
// transport failures at exact protocol moments. The script sees the
// request body (opcode first, request ID already stripped); responses
// echo the request's ID per the multiplexed framing. Requests are
// served in arrival order on each connection — the determinism the
// exact-count assertions below rely on. Frames beyond the script are
// served normally.
func scriptedServer(t *testing.T, srv *Server, script func(frame int, req []byte) scriptStep) string {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	var mu sync.Mutex
	frame := 0
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				for {
					raw, err := readFrame(conn)
					if err != nil || len(raw) < muxHeaderLen {
						return
					}
					id := binary.LittleEndian.Uint64(raw)
					req := raw[muxHeaderLen:]
					mu.Lock()
					idx := frame
					frame++
					mu.Unlock()
					withID := func(status byte, payload []byte) []byte {
						full := binary.LittleEndian.AppendUint64(nil, id)
						full = append(full, status)
						return append(full, payload...)
					}
					step := script(idx, req)
					switch step.act {
					case actDropBefore:
						return
					case actReject:
						if writeFrame(conn, withID(statusError, []byte("scripted rejection"))) != nil {
							return
						}
						continue
					}
					resp, conflict, rerr := srv.dispatch(req)
					var full []byte
					switch {
					case conflict:
						full = withID(statusConflict, nil)
					case rerr != nil:
						full = withID(statusError, []byte(rerr.Error()))
					default:
						full = withID(statusOK, resp)
					}
					switch step.act {
					case actDropAfter:
						return
					case actSwallow:
						continue // next readFrame blocks until the client hangs up
					case actTruncate:
						var hdr [4]byte
						binary.LittleEndian.PutUint32(hdr[:], uint32(len(full)))
						framed := append(hdr[:], full...)
						conn.Write(framed[:step.truncateAt])
						return
					case actCorrupt:
						// Framing stays intact; only the payload is
						// damaged — the fault a checksum must catch.
						full[len(full)-1] ^= 0xFF
						if writeFrame(conn, full) != nil {
							return
						}
					default:
						if writeFrame(conn, full) != nil {
							return
						}
					}
				}
			}(conn)
		}
	}()
	return ln.Addr().String()
}

// newBackedServer returns a Server over a fresh store, without a
// listener (scriptedServer provides the transport).
func newBackedServer(t *testing.T) *Server {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "scripted.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	return NewServer(st)
}

// fastRetry keeps redial backoff out of test wall-clock.
func fastRetry() ClientOptions {
	return ClientOptions{
		BackoffBase:    50 * time.Microsecond,
		BackoffMax:     time.Millisecond,
		RequestTimeout: 5 * time.Second,
	}
}

// TestClientRetriesTruncatedResponse truncates the response to the
// client's very first request (the Dial-time roots fetch) at every
// possible byte offset. The client must classify each of them as a
// transport failure, redial, resend, and come up healthy.
func TestClientRetriesTruncatedResponse(t *testing.T) {
	srv := newBackedServer(t)
	// Full roots response frame: header + request ID + status +
	// rootsVer + roots.
	frameLen := 4 + muxHeaderLen + 1 + 8 + 8*store.NumRoots
	for k := 0; k < frameLen; k++ {
		addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
			if frame == 0 {
				return scriptStep{act: actTruncate, truncateAt: k}
			}
			return scriptStep{act: actServe}
		})
		c, err := Dial(addr, fastRetry())
		if err != nil {
			t.Fatalf("truncate at %d: Dial failed: %v", k, err)
		}
		if rs := c.RetryStats(); rs.Reconnects == 0 || rs.Retries == 0 {
			t.Fatalf("truncate at %d: no reconnect recorded: %+v", k, rs)
		}
		if err := c.Ping(); err != nil {
			t.Fatalf("truncate at %d: ping after recovery: %v", k, err)
		}
		c.Close()
	}
}

// TestClientRetriesDroppedFetch: a Get whose response connection dies
// mid-flight is retried transparently.
func TestClientRetriesDroppedFetch(t *testing.T) {
	srv := newBackedServer(t)
	var dropFrame int
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		if frame == dropFrame {
			return scriptStep{act: actDropAfter}
		}
		return scriptStep{act: actServe}
	})
	dropFrame = -1
	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Page().Payload()[0] = 42
	h.MarkDirty()
	h.Release()
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	// Frames so far: roots, alloc, commit, roots (DropCache). Drop the
	// next one: the Get fetch.
	dropFrame = 4
	h2, err := c.Get(id)
	if err != nil {
		t.Fatalf("Get through dropped connection: %v", err)
	}
	defer h2.Release()
	if h2.Page().Payload()[0] != 42 {
		t.Fatalf("page content corrupted across retry: %d", h2.Page().Payload()[0])
	}
	if rs := c.RetryStats(); rs.Reconnects != 1 || rs.Retries != 1 {
		t.Fatalf("retry stats = %+v, want 1 reconnect / 1 retry", rs)
	}
}

// TestCommitAckLost: the commit reaches the server but the
// acknowledgement is lost. The client must reconnect, learn through
// its commit token that the transaction applied, and report success —
// without resending (which would double-apply without dedup).
func TestCommitAckLost(t *testing.T) {
	srv := newBackedServer(t)
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		if len(req) > 0 && req[0] == opCommit {
			return scriptStep{act: actDropAfter}
		}
		return scriptStep{act: actServe}
	})
	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.MarkDirty()
	h.Release()
	if err := c.Commit(); err != nil {
		t.Fatalf("commit with lost ack: %v", err)
	}
	commits, _, _ := srv.Stats()
	if commits != 1 {
		t.Fatalf("server applied %d commits, want exactly 1", commits)
	}
	rs := c.RetryStats()
	if rs.CommitChecks != 1 || rs.CommitResends != 0 || rs.CommitUnknowns != 0 {
		t.Fatalf("resolution stats = %+v, want 1 check, 0 resends", rs)
	}
}

// TestCommitLostBeforeServer: the connection dies before the commit
// frame is processed. The client must verify non-application through
// the token and only then resend.
func TestCommitLostBeforeServer(t *testing.T) {
	srv := newBackedServer(t)
	dropped := false
	var mu sync.Mutex
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		mu.Lock()
		defer mu.Unlock()
		if len(req) > 0 && req[0] == opCommit && !dropped {
			dropped = true
			return scriptStep{act: actDropBefore}
		}
		return scriptStep{act: actServe}
	})
	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.MarkDirty()
	h.Release()
	if err := c.Commit(); err != nil {
		t.Fatalf("commit dropped before server: %v", err)
	}
	commits, _, _ := srv.Stats()
	if commits != 1 {
		t.Fatalf("server applied %d commits, want exactly 1", commits)
	}
	rs := c.RetryStats()
	if rs.CommitChecks != 1 || rs.CommitResends != 1 {
		t.Fatalf("resolution stats = %+v, want 1 check, 1 resend", rs)
	}
}

// TestCommitUnknown: when neither the commit nor any resolution probe
// can get through within the retry budget, the typed ErrCommitUnknown
// surfaces and the client never blindly resends.
func TestCommitUnknown(t *testing.T) {
	srv := newBackedServer(t)
	var failing bool
	var mu sync.Mutex
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		mu.Lock()
		defer mu.Unlock()
		if failing {
			return scriptStep{act: actDropBefore}
		}
		return scriptStep{act: actServe}
	})
	opts := fastRetry()
	opts.RetryLimit = 3
	c, err := Dial(addr, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	_, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.MarkDirty()
	h.Release()
	mu.Lock()
	failing = true
	mu.Unlock()
	err = c.Commit()
	if !errors.Is(err, ErrCommitUnknown) {
		t.Fatalf("commit through dead network = %v, want ErrCommitUnknown", err)
	}
	commits, _, _ := srv.Stats()
	if commits != 0 {
		t.Fatalf("server applied %d commits, want 0", commits)
	}
	if rs := c.RetryStats(); rs.CommitUnknowns != 1 || rs.CommitResends != 0 {
		t.Fatalf("resolution stats = %+v, want 1 unknown, 0 resends", rs)
	}
}

// TestCommitTokenDedup exercises the server's dedup ring directly: the
// same tokened commit frame applied twice must commit once.
func TestCommitTokenDedup(t *testing.T) {
	srv := newBackedServer(t)
	// Materialize a page to write.
	id, h, err := srv.st.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	img := make([]byte, page.Size)
	req := &commitReq{
		token:  0xfeedface,
		writes: []writeEntry{{id, img}},
	}
	enc := encodeCommit(req)
	for i := 0; i < 2; i++ {
		_, conflict, err := srv.dispatch(enc)
		if err != nil || conflict {
			t.Fatalf("send %d: conflict=%v err=%v", i, conflict, err)
		}
	}
	commits, _, _ := srv.Stats()
	dup, _ := srv.FaultStats()
	if commits != 1 || dup != 1 {
		t.Fatalf("commits=%d dup=%d, want 1 and 1", commits, dup)
	}
}

// TestBatchDowngrade: a server that refuses opGetPages must downgrade
// the client to per-page fetches — transparently, with the downgrade
// recorded and the batch never attempted again.
func TestBatchDowngrade(t *testing.T) {
	srv := newBackedServer(t)
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		if len(req) > 0 && req[0] == opGetPages {
			return scriptStep{act: actReject}
		}
		return scriptStep{act: actServe}
	})
	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var ids []page.ID
	for i := 0; i < 5; i++ {
		id, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i + 1)
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	if err := c.Prefetch(ids); err != nil {
		t.Fatalf("prefetch against batch-refusing server: %v", err)
	}
	for i, id := range ids {
		h, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if h.Page().Payload()[0] != byte(i+1) {
			t.Fatalf("page %d content %d after downgrade", i, h.Page().Payload()[0])
		}
		h.Release()
	}
	if rs := c.RetryStats(); rs.Downgrades != 1 {
		t.Fatalf("downgrades = %d, want 1", rs.Downgrades)
	}
	_, batched := c.FrameStats()
	if batched != 1 {
		t.Fatalf("batch frames = %d, want exactly the one refused attempt", batched)
	}
	// A later prefetch must not try the batch path again.
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	if err := c.Prefetch(ids); err != nil {
		t.Fatal(err)
	}
	if _, batched2 := c.FrameStats(); batched2 != 1 {
		t.Fatalf("client re-attempted refused batch (frames %d)", batched2)
	}
}

// TestCloseIdempotentConcurrent: Close must be callable repeatedly and
// concurrently with an in-flight request, which fails promptly instead
// of retrying forever.
func TestCloseIdempotentConcurrent(t *testing.T) {
	srv := newBackedServer(t)
	addr := scriptedServer(t, srv, func(frame int, req []byte) scriptStep {
		if frame == 0 {
			return scriptStep{act: actServe} // Dial's roots fetch
		}
		return scriptStep{act: actSwallow} // everything later hangs
	})
	c, err := Dial(addr, fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		_, err := c.Get(page.ID(3))
		got <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Get block in its read
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			if err := c.Close(); err != nil {
				t.Errorf("concurrent Close: %v", err)
			}
		}()
	}
	wg.Wait()
	select {
	case err := <-got:
		if err == nil {
			t.Fatal("in-flight Get succeeded against a hung server after Close")
		}
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("in-flight Get after Close = %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight Get still blocked after Close")
	}
	if err := c.Close(); err != nil {
		t.Fatalf("repeated Close: %v", err)
	}
}

// TestClientThroughFlakyProxy: an end-to-end smoke over the fault
// proxy — random drops, delays and partial writes — must be absorbed
// by the retry machinery without corrupting data.
func TestClientThroughFlakyProxy(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "flaky.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	px, err := fault.NewProxy(addr.String(), fault.Config{
		Seed: 11, DropProb: 0.05, DelayProb: 0.05, MaxDelay: time.Millisecond, PartialProb: 0.02,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer px.Close()

	c, err := Dial(px.Addr(), fastRetry())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var ids []page.ID
	for i := 0; i < 20; i++ {
		id, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i)
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
		if err := c.Commit(); err != nil {
			t.Fatalf("commit %d through flaky proxy: %v", i, err)
		}
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	for i, id := range ids {
		h, err := c.Get(id)
		if err != nil {
			t.Fatalf("get %d through flaky proxy: %v", i, err)
		}
		if h.Page().Payload()[0] != byte(i) {
			t.Fatalf("page %d corrupted through flaky proxy", i)
		}
		h.Release()
	}
	if px.Stats().Total() == 0 {
		t.Fatal("proxy injected no faults; test exercised nothing")
	}
	if rs := c.RetryStats(); rs.CommitUnknowns != 0 {
		t.Fatalf("flaky run left %d unknown commits", rs.CommitUnknowns)
	}
}
