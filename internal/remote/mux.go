package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// errTimeout marks a request that outlived its per-request deadline.
// The transport is presumed stalled, so the whole connection is
// retired; the error is transport-class, so idempotent requests retry
// on a fresh connection.
var errTimeout = errors.New("remote: request deadline exceeded")

// muxConn is the client's demultiplexing core for one connection. A
// writer goroutine serializes request frames onto the wire (many
// callers, one writer — no lock is ever held across conn I/O), and a
// reader goroutine routes response frames to per-request channels by
// ID. Any transport failure — a read or write error, a request
// deadline, Close — kills the whole connection and drains every
// pending request with the same cause: once the framing is in doubt
// there is no salvaging individual requests on it.
type muxConn struct {
	conn net.Conn
	c    *Client // counter/stats sink

	writeCh chan []byte
	down    chan struct{} // closed by kill

	sem chan struct{} // caps in-flight requests; nil = unlimited

	mu      sync.Mutex
	nextID  uint64 // last assigned request ID; never zero
	pending map[uint64]chan wireResp
	dead    bool
	cause   error
}

// wireResp is one routed response: the payload past the status byte,
// or the error the status (or the transport) turned into.
type wireResp struct {
	payload []byte
	err     error
}

func newMuxConn(c *Client, conn net.Conn) *muxConn {
	m := &muxConn{
		conn:    conn,
		c:       c,
		writeCh: make(chan []byte, 32),
		down:    make(chan struct{}),
		pending: make(map[uint64]chan wireResp),
	}
	if n := c.opts.MaxInflight; n > 0 {
		m.sem = make(chan struct{}, n)
	}
	go m.writeLoop()
	go m.readLoop()
	return m
}

func (m *muxConn) isDead() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.dead
}

// kill retires the connection: the first cause wins, every pending
// request fails with it (reconnect draining — no request is left
// hanging on a dead connection), and both pump goroutines unwind
// (closing the conn unblocks any read or write in flight).
func (m *muxConn) kill(cause error) {
	m.mu.Lock()
	if m.dead {
		m.mu.Unlock()
		return
	}
	m.dead = true
	m.cause = cause
	pend := m.pending
	m.pending = nil
	close(m.down)
	m.mu.Unlock()
	m.conn.Close()
	for _, ch := range pend {
		ch <- wireResp{err: cause}
	}
}

// deathCause reports why the connection died (errNotConnected if it
// somehow has not died yet — callers only ask after seeing down).
func (m *muxConn) deathCause() error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.cause != nil {
		return m.cause
	}
	return errNotConnected
}

func (m *muxConn) writeLoop() {
	for {
		select {
		case frame := <-m.writeCh:
			if _, err := m.conn.Write(frame); err != nil {
				m.kill(fmt.Errorf("remote: send: %w", err))
				return
			}
		case <-m.down:
			return
		}
	}
}

// readLoop is the demultiplexer: the one goroutine that reads response
// frames, routing each to its requester by ID. A response for an ID
// nobody is waiting on (a request that timed out locally, or a
// misbehaving server) is counted and dropped — never misrouted. ID
// zero is a connection-level error raised by the server outside any
// request ("server busy"); it kills the connection with that server
// error as the cause, so every pending request fails with a definite,
// non-retriable answer.
func (m *muxConn) readLoop() {
	for {
		frame, err := readFrame(m.conn)
		if err != nil {
			m.kill(fmt.Errorf("remote: receive: %w", err))
			return
		}
		if len(frame) < muxHeaderLen+1 {
			// Too short for an ID and a status byte: protocol desync;
			// retire the connection rather than guess.
			m.kill(errors.New("remote: runt response frame"))
			return
		}
		id := frameID(frame)
		body := frame[muxHeaderLen:]
		if id == connReqID {
			_, rerr := decodeStatus(body)
			if rerr == nil {
				rerr = errors.New("remote: server sent OK on the connection-level ID")
			}
			m.kill(rerr)
			return
		}
		m.mu.Lock()
		ch, ok := m.pending[id]
		if ok {
			delete(m.pending, id)
		}
		m.mu.Unlock()
		if !ok {
			m.c.unknownResps.Add(1)
			continue
		}
		payload, rerr := decodeStatus(body)
		ch <- wireResp{payload: payload, err: rerr}
	}
}

// decodeStatus splits a response body (status byte + payload) into the
// payload, or the typed error the status encodes.
func decodeStatus(body []byte) ([]byte, error) {
	switch body[0] {
	case statusOK:
		return body[1:], nil
	case statusConflict:
		return nil, ErrConflict
	case statusBadRequest:
		return nil, &ServerError{BadRequest: true, Msg: string(body[1:])}
	case statusCorrupt:
		return nil, decodeCorrupt(body[1:])
	default:
		return nil, &ServerError{Msg: string(body[1:])}
	}
}

// forget abandons a pending request (the frame never reached the
// writer). Safe after kill: delete on a nil map is a no-op.
func (m *muxConn) forget(id uint64) {
	m.mu.Lock()
	delete(m.pending, id)
	m.mu.Unlock()
}

// do runs one request round trip: assign an ID, register the response
// channel, enqueue the frame, wait. payload is opcode + body; the wire
// frame (length prefix, then ID, then payload) is assembled here — the
// client's single appendFrameID site, pinned by the opcodes analyzer.
//
// A request that exceeds timeout kills the connection: the protocol
// has no cancel message, and a transport that cannot deliver an answer
// in time cannot be trusted to keep pairing answers with waiters.
func (m *muxConn) do(payload []byte, timeout time.Duration) ([]byte, error) {
	if m.sem != nil {
		queued := time.Now()
		select {
		case m.sem <- struct{}{}:
			m.c.queueWaitNs.Add(time.Since(queued).Nanoseconds())
		case <-m.down:
			return nil, m.deathCause()
		}
		defer func() { <-m.sem }()
	}
	ch := make(chan wireResp, 1)
	m.mu.Lock()
	if m.dead {
		cause := m.cause
		m.mu.Unlock()
		return nil, cause
	}
	m.nextID++
	id := m.nextID
	m.pending[id] = ch
	m.mu.Unlock()

	frame := make([]byte, 4, 4+muxHeaderLen+len(payload))
	frame = appendFrameID(frame, id)
	frame = append(frame, payload...)
	binary.LittleEndian.PutUint32(frame, uint32(len(frame)-4))
	select {
	case m.writeCh <- frame:
	case <-m.down:
		m.forget(id)
		return nil, m.deathCause()
	}
	if timeout <= 0 {
		r := <-ch
		return r.payload, r.err
	}
	timer := time.NewTimer(timeout)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.payload, r.err
	case <-timer.C:
		m.kill(errTimeout)
		return nil, errTimeout
	}
}
