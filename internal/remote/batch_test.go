package remote

import (
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/store"
)

// TestBatchedClosureRoundTrips measures the client/server round-trip
// amplification the batched closures remove: a cold per-node closure
// pays one opGetPage frame per page miss, while the frontier-batched
// closure fetches each BFS level's missing pages in one opGetPages
// frame. The database is generated locally (generation over the wire
// is slow and irrelevant here) and then served from the same file.
func TestBatchedClosureRoundTrips(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	path := filepath.Join(t.TempDir(), "batch.db")
	local, err := oodb.Open(path, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(local, hyper.GenConfig{LeafLevel: 5, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := local.Close(); err != nil {
		t.Fatal(err)
	}

	st, err := store.Open(path, nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})

	c, err := Dial(addr.String(), ClientOptions{PoolPages: 16384})
	if err != nil {
		t.Fatal(err)
	}
	db, err := oodb.New(c, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	defer db.Close()

	// Reference: the seed's per-node closure, cold.
	var perNode func(id hyper.NodeID) (int, error)
	perNode = func(id hyper.NodeID) (int, error) {
		total := 1
		kids, err := db.Children(id)
		if err != nil {
			return 0, err
		}
		for _, k := range kids {
			n, err := perNode(k)
			if err != nil {
				return 0, err
			}
			total += n
		}
		return total, nil
	}
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	refBase, _ := c.FrameStats()
	count, err := perNode(lay.FirstID())
	if err != nil {
		t.Fatal(err)
	}
	if count != lay.Total() {
		t.Fatalf("per-node closure visited %d nodes, want %d", count, lay.Total())
	}
	refTotal, _ := c.FrameStats()
	refFrames := refTotal - refBase

	// Frontier-batched closure, cold again.
	if err := db.DropCaches(); err != nil {
		t.Fatal(err)
	}
	base, baseBatched := c.FrameStats()
	nodes, err := hyper.Closure1N(db, lay.FirstID())
	if err != nil {
		t.Fatal(err)
	}
	if len(nodes) != lay.Total() {
		t.Fatalf("batched closure visited %d nodes, want %d", len(nodes), lay.Total())
	}
	total, batched := c.FrameStats()
	batchFrames := batched - baseBatched
	batchTotal := total - base

	// At most one opGetPages frame per BFS level (a level whose pages
	// are all resident sends none), plus lockstep generations for the
	// rare overflow chains.
	levels := lay.LeafLevel + 1
	if batchFrames == 0 {
		t.Fatalf("batched closure sent no opGetPages frames")
	}
	if batchFrames > uint64(4*levels) {
		t.Errorf("batched closure sent %d opGetPages frames for %d frontier levels", batchFrames, levels)
	}
	if batchTotal*5 > refFrames {
		t.Errorf("round-trip reduction %d → %d is below 5x", refFrames, batchTotal)
	}
	t.Logf("per-node: %d frames; batched: %d frames (%d opGetPages) over %d levels; reduction %.1fx",
		refFrames, batchTotal, batchFrames, levels, float64(refFrames)/float64(batchTotal))
}
