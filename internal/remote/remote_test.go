package remote

import (
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"testing"

	"hypermodel/internal/backend/backendtest"
	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/btree"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// startServer spins a page server over a fresh store and returns its
// address.
func startServer(t *testing.T) (string, *Server) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "server.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return addr.String(), srv
}

func dial(t *testing.T, addr string) *Client {
	t.Helper()
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestPingAndRoots(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < store.NumRoots; i++ {
		if got := c.Root(i); got != page.Invalid {
			t.Fatalf("fresh root %d = %d", i, got)
		}
	}
}

func TestAllocWriteCommitFetch(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	id, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	copy(h.Page().Payload(), "over the wire")
	h.MarkDirty()
	h.Release()
	c.SetRoot(2, id)
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}

	// A second client sees the committed page and root.
	c2 := dial(t, addr)
	if got := c2.Root(2); got != id {
		t.Fatalf("root = %d, want %d", got, id)
	}
	h2, err := c2.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer h2.Release()
	if string(h2.Page().Payload()[:13]) != "over the wire" {
		t.Fatal("page contents lost in transit")
	}
}

func TestColdWarmFetchCounts(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	id, h, err := c.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.MarkDirty()
	h.Release()
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	// Warm: cached locally, no fetch.
	_, _, f0 := c.CacheStats()
	h, err = c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	_, _, f1 := c.CacheStats()
	if f1 != f0 {
		t.Fatalf("warm access fetched from server (%d -> %d)", f0, f1)
	}
	// Cold: DropCache forces a server round trip.
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	h, err = c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	h.Release()
	_, _, f2 := c.CacheStats()
	if f2 != f1+1 {
		t.Fatalf("cold access did not fetch (%d -> %d)", f1, f2)
	}
}

func TestOptimisticConflict(t *testing.T) {
	addr, srv := startServer(t)
	writer := dial(t, addr)

	// Set up one committed page.
	id, h, err := writer.Alloc(page.TypeSlotted)
	if err != nil {
		t.Fatal(err)
	}
	h.Page().Payload()[0] = 1
	h.MarkDirty()
	h.Release()
	writer.SetRoot(0, id)
	if err := writer.Commit(); err != nil {
		t.Fatal(err)
	}

	// Two clients read the same page, both try to update it.
	a := dial(t, addr)
	bc := dial(t, addr)
	update := func(c *Client, v byte) error {
		h, err := c.Get(id)
		if err != nil {
			return err
		}
		h.Page().Payload()[0] = v
		h.MarkDirty()
		h.Release()
		return c.Commit()
	}
	// Both must Get before either commits, to create the race.
	ha, err := a.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	hb, err := bc.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	ha.Page().Payload()[0] = 10
	a.pool.MarkDirty(ha.(*handle).f)
	ha.Release()
	hb.Page().Payload()[0] = 20
	bc.pool.MarkDirty(hb.(*handle).f)
	hb.Release()

	if err := a.Commit(); err != nil {
		t.Fatalf("first committer must win: %v", err)
	}
	err = bc.Commit()
	if !errors.Is(err, ErrConflict) {
		t.Fatalf("second committer got %v, want ErrConflict", err)
	}
	// After the conflict the client retries with fresh caches and
	// succeeds.
	if err := update(bc, 20); err != nil {
		t.Fatalf("retry after conflict: %v", err)
	}
	_, aborts, _ := srv.Stats()
	if aborts != 1 {
		t.Fatalf("server counted %d aborts, want 1", aborts)
	}
	// Final state is the retry's value.
	c := dial(t, addr)
	hc, err := c.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	defer hc.Release()
	if hc.Page().Payload()[0] != 20 {
		t.Fatalf("final value = %d, want 20", hc.Page().Payload()[0])
	}
}

func TestNonConflictingClientsBothCommit(t *testing.T) {
	// R9: two users updating *different* nodes in the same structure
	// must both succeed.
	addr, srv := startServer(t)
	setup := dial(t, addr)
	var ids [2]page.ID
	for i := range ids {
		id, h, err := setup.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.MarkDirty()
		h.Release()
		ids[i] = id
	}
	if err := setup.Commit(); err != nil {
		t.Fatal(err)
	}

	a := dial(t, addr)
	b := dial(t, addr)
	for i, c := range []*Client{a, b} {
		h, err := c.Get(ids[i])
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i + 1)
		h.MarkDirty()
		h.Release()
	}
	if err := a.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := b.Commit(); err != nil {
		t.Fatalf("disjoint update conflicted: %v", err)
	}
	commits, aborts, _ := srv.Stats()
	if aborts != 0 || commits < 3 {
		t.Fatalf("commits=%d aborts=%d", commits, aborts)
	}
}

// TestBTreeOverRemote runs the B+tree directly against the remote
// space: structural layers must be oblivious to the transport.
func TestBTreeOverRemote(t *testing.T) {
	addr, _ := startServer(t)
	c := dial(t, addr)
	tr, err := btree.Open(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i++ {
		if err := tr.Put(btree.U64Key(uint64(i)), []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}
	tr2, err := btree.Open(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 500; i += 61 {
		v, ok, err := tr2.Get(btree.U64Key(uint64(i)))
		if err != nil || !ok || v[0] != byte(i) {
			t.Fatalf("key %d over remote: %v %v %v", i, v, ok, err)
		}
	}
}

// TestConformanceOverRemote runs the full backend conformance suite on
// the oodb mapping over the page-server client — the complete
// workstation/server stack.
func TestConformanceOverRemote(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	var addr string
	backendtest.Run(t, backendtest.Config{
		Open: func(t *testing.T) hyper.Backend {
			addr, _ = startServer(t)
			c, err := Dial(addr, ClientOptions{})
			if err != nil {
				t.Fatal(err)
			}
			db, err := oodb.New(c, oodb.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
		Reopen: func(t *testing.T, b hyper.Backend) hyper.Backend {
			if err := b.Close(); err != nil {
				t.Fatal(err)
			}
			c, err := Dial(addr, ClientOptions{})
			if err != nil {
				t.Fatal(err)
			}
			db, err := oodb.New(c, oodb.DefaultOptions())
			if err != nil {
				t.Fatal(err)
			}
			return db
		},
	})
}

func TestServerRejectsGarbage(t *testing.T) {
	addr, _ := startServer(t)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	send := func(id uint64, body ...byte) {
		t.Helper()
		frame := binary.LittleEndian.AppendUint64(nil, id)
		if err := writeFrame(conn, append(frame, body...)); err != nil {
			t.Fatal(err)
		}
	}
	recv := func() (id uint64, status byte) {
		t.Helper()
		resp, err := readFrame(conn)
		if err != nil {
			t.Fatal(err)
		}
		if len(resp) < muxHeaderLen+1 {
			t.Fatalf("runt response (%d bytes)", len(resp))
		}
		return binary.LittleEndian.Uint64(resp), resp[muxHeaderLen]
	}

	send(1, 200) // unknown opcode
	if id, status := recv(); id != 1 || status != statusBadRequest {
		t.Fatalf("unknown opcode got id %d status %d, want 1 / statusBadRequest", id, status)
	}
	// A frame too short for a request ID is answered on the
	// connection-level ID zero rather than killing the connection.
	if err := writeFrame(conn, []byte{1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if id, status := recv(); id != connReqID || status != statusBadRequest {
		t.Fatalf("runt request got id %d status %d, want 0 / statusBadRequest", id, status)
	}
	// The connection stays usable.
	send(2, opPing)
	if id, status := recv(); id != 2 || status != statusOK {
		t.Fatalf("ping after error: id %d status %d", id, status)
	}
}

func TestCommitCodecRoundTrip(t *testing.T) {
	img := make([]byte, page.Size)
	for i := range img {
		img[i] = byte(i)
	}
	req := &commitReq{
		reads:  []readEntry{{1, 5}, {2, 0}},
		writes: []writeEntry{{3, img}},
		roots:  []rootEntry{{4, 99}},
		frees:  []page.ID{7, 8},
	}
	enc := encodeCommit(req)
	got, err := decodeCommit(enc[1:]) // skip opcode
	if err != nil {
		t.Fatal(err)
	}
	if len(got.reads) != 2 || got.reads[0] != req.reads[0] {
		t.Fatalf("reads = %+v", got.reads)
	}
	if len(got.writes) != 1 || got.writes[0].id != 3 || got.writes[0].image[100] != 100 {
		t.Fatal("writes mismatch")
	}
	if len(got.roots) != 1 || got.roots[0] != req.roots[0] {
		t.Fatal("roots mismatch")
	}
	if len(got.frees) != 2 || got.frees[1] != 8 {
		t.Fatal("frees mismatch")
	}
	if _, err := decodeCommit(enc[1 : len(enc)-3]); err == nil {
		t.Fatal("truncated commit accepted")
	}
}
