package remote

import (
	"encoding/binary"
	"io"
	"net"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// FuzzDecodeCommit: a hostile or corrupted client must not be able to
// panic the server's commit decoder.
func FuzzDecodeCommit(f *testing.F) {
	f.Add([]byte{})
	img := make([]byte, page.Size)
	good := encodeCommit(&commitReq{
		reads:  []readEntry{{1, 2}},
		writes: []writeEntry{{3, img}},
		roots:  []rootEntry{{0, 9}},
		frees:  []page.ID{4},
	})
	f.Add(good[1:]) // decoder sees the body without the opcode
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeCommit(data)
		if err != nil {
			return
		}
		// Accepted requests re-encode to the same body.
		re := encodeCommit(req)
		if len(re)-1 != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(re)-1)
		}
	})
}

// muxFrame assembles one length-prefixed mux frame: id, then body.
func muxFrame(id uint64, body ...byte) []byte {
	b := binary.LittleEndian.AppendUint32(nil, uint32(8+len(body)))
	b = binary.LittleEndian.AppendUint64(b, id)
	return append(b, body...)
}

// FuzzClientDemux feeds an arbitrary server-side byte stream to the
// client's demultiplexing core while requests are in flight. Whatever
// the stream contains — interleaved and out-of-order responses,
// duplicate IDs, responses for IDs nobody asked for, truncated or
// oversized frames, a connection-level error, garbage — the demux must
// never panic, never route a response to the wrong waiter, and every
// in-flight request must return once the stream ends.
func FuzzClientDemux(f *testing.F) {
	// In-order, then reversed-order responses for the three real
	// requests the harness issues (IDs 1..3).
	f.Add(concat(muxFrame(1, statusOK, 'a'), muxFrame(2, statusOK, 'b'), muxFrame(3, statusOK, 'c')))
	f.Add(concat(muxFrame(3, statusConflict), muxFrame(2, statusError, 'x'), muxFrame(1, statusBadRequest)))
	// Duplicate ID: the second response has no waiter left.
	f.Add(concat(muxFrame(1, statusOK), muxFrame(1, statusOK)))
	// Response for an ID nobody asked for.
	f.Add(muxFrame(99, statusOK, 'z'))
	// Connection-level error on the reserved ID zero.
	f.Add(muxFrame(0, statusError, 's', 'e', 'r', 'v', 'e', 'r', ' ', 'b', 'u', 's', 'y'))
	// Runt frame: too short for ID + status.
	f.Add(binary.LittleEndian.AppendUint32(nil, 3))
	// Truncated mid-header and mid-body.
	f.Add(muxFrame(1, statusOK, 'a')[:5])
	f.Add([]byte{255, 255, 255, 255, 0})
	f.Fuzz(func(t *testing.T, stream []byte) {
		c := &Client{opts: ClientOptions{}.withDefaults(), hist: make(map[byte]*opHist)}
		cli, srv := net.Pipe()
		m := newMuxConn(c, cli)
		go io.Copy(io.Discard, srv) // absorb the requests' own frames

		results := make(chan wireResp, 3)
		var wg sync.WaitGroup
		for i := 0; i < 3; i++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				payload, err := m.do([]byte{opPing}, 0)
				results <- wireResp{payload: payload, err: err}
			}()
		}
		// Let the requests register before the stream plays, so frames
		// for IDs 1..3 have waiters to route to.
		deadline := time.Now().Add(time.Second)
		for {
			m.mu.Lock()
			n := len(m.pending)
			dead := m.dead
			m.mu.Unlock()
			if n == 3 || dead || time.Now().After(deadline) {
				break
			}
			time.Sleep(50 * time.Microsecond)
		}
		srv.Write(stream)
		srv.Close() // EOF: the demux kills the conn and drains stragglers
		wg.Wait()
		close(results)
		for r := range results {
			if r.err == nil && r.payload == nil {
				t.Fatal("request resolved with neither payload nor error")
			}
		}
		// The reader retires the connection when it sees EOF; give it a
		// moment — requests may all have resolved before it noticed.
		for waited := 0; !m.isDead(); waited++ {
			if waited > 1000 {
				t.Fatal("demux survived stream EOF without retiring the connection")
			}
			time.Sleep(time.Millisecond)
		}
		m.kill(ErrClosed) // idempotent
	})
}

func concat(frames ...[]byte) []byte {
	var out []byte
	for _, fr := range frames {
		out = append(out, fr...)
	}
	return out
}

// FuzzServerStream feeds an arbitrary client-side byte stream to a
// live server connection handler. Truncations at any offset, runt
// frames shorter than a request ID, unknown opcodes, duplicated IDs
// and interleaved pipelined requests must never panic the server or
// wedge its handler.
func FuzzServerStream(f *testing.F) {
	f.Add(muxFrame(1, opPing))
	f.Add(concat( // pipelined requests, duplicate IDs included
		muxFrame(1, opPing),
		muxFrame(2, binary.LittleEndian.AppendUint64([]byte{opGetPage}, 1)...),
		muxFrame(2, opRoots),
		muxFrame(3, opStats),
	))
	f.Add(muxFrame(7, 200))                         // unknown opcode
	f.Add(binary.LittleEndian.AppendUint32(nil, 3)) // runt: no room for an ID
	f.Add(muxFrame(1, opPing)[:6])                  // truncated mid-ID
	f.Add([]byte{255, 255, 255, 255})               // oversized length prefix
	f.Add(muxFrame(5, opCommit, 1, 2, 3))           // truncated commit body

	st, err := store.Open(filepath.Join(f.TempDir(), "fuzz.db"), nil)
	if err != nil {
		f.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(st)
	f.Fuzz(func(t *testing.T, stream []byte) {
		cli, conn := net.Pipe()
		done := make(chan struct{})
		go func() {
			defer close(done)
			srv.handle(conn)
		}()
		go io.Copy(io.Discard, cli) // absorb whatever the server answers
		cli.Write(stream)
		cli.Close()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			t.Fatal("server handler wedged on fuzzed stream")
		}
	})
}
