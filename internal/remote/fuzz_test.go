package remote

import (
	"testing"

	"hypermodel/internal/storage/page"
)

// FuzzDecodeCommit: a hostile or corrupted client must not be able to
// panic the server's commit decoder.
func FuzzDecodeCommit(f *testing.F) {
	f.Add([]byte{})
	img := make([]byte, page.Size)
	good := encodeCommit(&commitReq{
		reads:  []readEntry{{1, 2}},
		writes: []writeEntry{{3, img}},
		roots:  []rootEntry{{0, 9}},
		frees:  []page.ID{4},
	})
	f.Add(good[1:]) // decoder sees the body without the opcode
	f.Add([]byte{255, 255, 255, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := decodeCommit(data)
		if err != nil {
			return
		}
		// Accepted requests re-encode to the same body.
		re := encodeCommit(req)
		if len(re)-1 != len(data) {
			t.Fatalf("round trip changed size: %d -> %d", len(data), len(re)-1)
		}
	})
}
