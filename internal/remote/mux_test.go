package remote

import (
	"encoding/binary"
	"net"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/storage/page"
)

// TestUnknownResponseCounted: a response frame whose ID matches no
// waiter must be counted and dropped — never misrouted to another
// request, never fatal to the connection.
func TestUnknownResponseCounted(t *testing.T) {
	c := &Client{opts: ClientOptions{}.withDefaults(), hist: make(map[byte]*opHist)}
	cli, srv := net.Pipe()
	defer srv.Close()
	m := newMuxConn(c, cli)
	defer m.kill(ErrClosed)

	done := make(chan error, 1)
	go func() {
		_, err := m.do([]byte{opPing}, 0)
		done <- err
	}()
	// Consume the request and answer the wrong ID first, then the
	// right one (the request got ID 1).
	if _, err := readFrame(srv); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(srv, muxFrame(42, statusOK)[4:]); err != nil {
		t.Fatal(err)
	}
	if err := writeFrame(srv, muxFrame(1, statusOK)[4:]); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("request failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("request never resolved")
	}
	if got := c.unknownResps.Load(); got != 1 {
		t.Fatalf("unknown responses = %d, want 1", got)
	}
	if m.isDead() {
		t.Fatal("unknown-ID response killed the connection")
	}
}

// TestOutOfOrderResponsesRoute: two pipelined requests answered in
// reverse order must each receive their own response.
func TestOutOfOrderResponsesRoute(t *testing.T) {
	c := &Client{opts: ClientOptions{}.withDefaults(), hist: make(map[byte]*opHist)}
	cli, srv := net.Pipe()
	defer srv.Close()
	m := newMuxConn(c, cli)
	defer m.kill(ErrClosed)

	type res struct {
		id      uint64
		payload []byte
		err     error
	}
	results := make(chan res, 2)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			payload, err := m.do([]byte{opPing}, 0)
			results <- res{payload: payload, err: err}
		}()
	}
	launch()
	launch()
	var ids []uint64
	for i := 0; i < 2; i++ {
		req, err := readFrame(srv)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, binary.LittleEndian.Uint64(req))
	}
	// Answer in reverse arrival order, each with its ID as payload.
	for i := len(ids) - 1; i >= 0; i-- {
		body := append(muxFrame(ids[i], statusOK)[4:], byte(ids[i]))
		if err := writeFrame(srv, body); err != nil {
			t.Fatal(err)
		}
	}
	wg.Wait()
	close(results)
	seen := 0
	for r := range results {
		if r.err != nil {
			t.Fatalf("pipelined request failed: %v", r.err)
		}
		if len(r.payload) != 1 {
			t.Fatalf("payload = %v", r.payload)
		}
		seen++
	}
	if seen != 2 {
		t.Fatalf("resolved %d requests, want 2", seen)
	}
}

// TestPipelinedGetsConcurrent: many goroutines hammering Get on one
// client must all succeed with correct contents — the session mutex is
// released across fetches, so this exercises the demux under real
// concurrency (and under -race).
func TestPipelinedGetsConcurrent(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, ClientOptions{Conns: 2, MaxInflight: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const pages = 16
	ids := make([]page.ID, pages)
	for i := range ids {
		id, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i + 1)
		h.MarkDirty()
		h.Release()
		ids[i] = id
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	errCh := make(chan error, 64)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for k := 0; k < 32; k++ {
				i := (g + k) % pages
				h, err := c.Get(ids[i])
				if err != nil {
					errCh <- err
					return
				}
				if h.Page().Payload()[0] != byte(i+1) {
					t.Errorf("page %d corrupted under pipelining", i)
				}
				h.Release()
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatalf("concurrent Get: %v", err)
	}
	if st := c.InflightStats(); st.MaxDepth == 0 {
		t.Fatal("InflightStats recorded no concurrent depth")
	}
}

// TestPrefetchAsyncWarmsCache: an async prefetch must land every page
// in the workstation cache — subsequent Gets are pure hits — and its
// wait function must be callable more than once.
func TestPrefetchAsyncWarmsCache(t *testing.T) {
	addr, _ := startServer(t)
	c, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ids []page.ID
	for i := 0; i < 8; i++ {
		id, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			t.Fatal(err)
		}
		h.Page().Payload()[0] = byte(i + 1)
		h.MarkDirty()
		h.Release()
		ids = append(ids, id)
	}
	if err := c.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := c.DropCache(); err != nil {
		t.Fatal(err)
	}

	wait := c.PrefetchAsync(ids)
	if err := wait(); err != nil {
		t.Fatalf("async prefetch: %v", err)
	}
	if err := wait(); err != nil {
		t.Fatalf("second wait: %v", err)
	}
	_, _, readsBefore := c.CacheStats()
	for i, id := range ids {
		h, err := c.Get(id)
		if err != nil {
			t.Fatal(err)
		}
		if h.Page().Payload()[0] != byte(i+1) {
			t.Fatalf("page %d content %d after async prefetch", i, h.Page().Payload()[0])
		}
		h.Release()
	}
	if _, _, readsAfter := c.CacheStats(); readsAfter != readsBefore {
		t.Fatalf("Gets after async prefetch still fetched %d pages", readsAfter-readsBefore)
	}
	// An async prefetch of already-resident pages is a no-op wait.
	if err := c.PrefetchAsync(ids)(); err != nil {
		t.Fatal(err)
	}
}
