package remote

import (
	"encoding/binary"
	"errors"
	"net"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"hypermodel/internal/fault"
	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// startServerWith opens a fresh store, applies cfg to the server
// before it starts listening, and returns its address.
func startServerWith(t *testing.T, cfg func(*Server)) (string, *Server) {
	t.Helper()
	st, err := store.Open(filepath.Join(t.TempDir(), "server.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	srv := NewServer(st)
	if cfg != nil {
		cfg(srv)
	}
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		srv.Close()
		st.Close()
	})
	return addr.String(), srv
}

// TestServerSurvivesTruncatedRequests sends a valid GetPage request
// truncated at every byte offset — header included — each followed by
// an abrupt close. The server must shrug off every one of them and
// keep serving well-formed clients.
func TestServerSurvivesTruncatedRequests(t *testing.T) {
	addr, _ := startServerWith(t, nil)
	// A full opGetPage request frame: header + request ID + opcode +
	// pageID.
	payload := binary.LittleEndian.AppendUint64(nil, 7) // request ID
	payload = append(payload, opGetPage)
	payload = binary.LittleEndian.AppendUint64(payload, 1)
	framed := binary.LittleEndian.AppendUint32(nil, uint32(len(payload)))
	framed = append(framed, payload...)

	for k := 0; k < len(framed); k++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatalf("truncate at %d: dial: %v", k, err)
		}
		if _, err := conn.Write(framed[:k]); err != nil {
			t.Fatalf("truncate at %d: write: %v", k, err)
		}
		conn.Close()
	}

	// The server is still healthy after 21 mangled connections.
	c := dial(t, addr)
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after truncated-request barrage: %v", err)
	}
}

// TestServerIdleTimeout: a connection that never sends a request is
// reaped; a live client doing requests is not.
func TestServerIdleTimeout(t *testing.T) {
	addr, _ := startServerWith(t, func(s *Server) { s.SetIdleTimeout(100 * time.Millisecond) })

	idle, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer idle.Close()
	idle.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := idle.Read(make([]byte, 1)); err == nil {
		t.Fatal("idle connection was not closed by the server")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatal("server kept the idle connection past its idle timeout")
	}

	// An active client outlives many idle windows.
	c := dial(t, addr)
	for i := 0; i < 5; i++ {
		if err := c.Ping(); err != nil {
			t.Fatalf("active client ping %d: %v", i, err)
		}
		time.Sleep(30 * time.Millisecond)
	}
}

// TestServerMaxConns: connections beyond the cap are refused with a
// clean error frame, and capacity frees up when a client leaves.
func TestServerMaxConns(t *testing.T) {
	addr, srv := startServerWith(t, func(s *Server) { s.SetMaxConns(1) })

	c1, err := Dial(addr, ClientOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Dial(addr, ClientOptions{}); err == nil {
		t.Fatal("second client admitted past max-conns=1")
	} else if !strings.Contains(err.Error(), "server busy") {
		t.Fatalf("refusal error = %v, want a clean 'server busy'", err)
	}
	if _, refused := srv.FaultStats(); refused == 0 {
		t.Fatal("server counted no refused connections")
	}

	c1.Close()
	// The slot frees asynchronously as the handler unwinds.
	var c2 *Client
	for i := 0; i < 100; i++ {
		if c2, err = Dial(addr, ClientOptions{}); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("slot never freed after first client closed: %v", err)
	}
	c2.Close()
}

// TestServerPanicIsolation: a panic inside one request's storage
// operation must be confined to that request — the connection, the
// server, and subsequent requests all survive.
func TestServerPanicIsolation(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "panicky.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	// Every 3rd storage operation panics.
	srv := NewServer(fault.NewSpace(st, 0, 3))
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dial(t, addr.String())
	sawPanic := false
	for i := 0; i < 9; i++ {
		_, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			if !strings.Contains(err.Error(), "panic") {
				t.Fatalf("alloc %d: %v, want a recovered-panic server error", i, err)
			}
			sawPanic = true
			continue
		}
		h.Release()
	}
	if !sawPanic {
		t.Fatal("fault space injected no panics; test exercised nothing")
	}
	// Same connection, same server: still alive.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after recovered panics: %v", err)
	}
}

// TestServerStorageFaultKeepsConnection: a storage error is answered
// as a server fault (statusError, not statusBadRequest) and does not
// cost the client its connection.
func TestServerStorageFaultKeepsConnection(t *testing.T) {
	st, err := store.Open(filepath.Join(t.TempDir(), "faulty.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := NewServer(fault.NewSpace(st, 2, 0)) // every 2nd op errors
	addr, err := srv.ListenAndServe("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	c := dial(t, addr.String())
	var serverErrs, ok int
	for i := 0; i < 6; i++ {
		_, h, err := c.Alloc(page.TypeSlotted)
		if err != nil {
			var se *ServerError
			if !errors.As(err, &se) || se.BadRequest {
				t.Fatalf("alloc %d: %v, want a non-BadRequest ServerError", i, err)
			}
			serverErrs++
			continue
		}
		h.Release()
		ok++
	}
	if serverErrs == 0 || ok == 0 {
		t.Fatalf("errs=%d ok=%d: expected a mix of faults and successes", serverErrs, ok)
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after storage faults: %v", err)
	}
}
