package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Server exposes a local page store to workstation clients over TCP.
// All requests are serialized through one mutex: the server machine is
// the coordination point, as in the centralized-control architectures
// the paper discusses under R6.
type Server struct {
	mu       sync.Mutex
	st       *store.Store
	versions map[page.ID]uint64 // bumped on every committed write
	ln       net.Listener
	wg       sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	commits  uint64
	aborts   uint64
	fetches  uint64
	logf     func(format string, args ...any)
}

// rootsVersionKey is the pseudo-page whose version covers the root
// directory, so root changes participate in optimistic validation.
const rootsVersionKey = page.ID(0)

// NewServer wraps an open store. The caller keeps ownership of the
// store and closes it after the server stops.
func NewServer(st *store.Store) *Server {
	return &Server{
		st:       st,
		versions: make(map[page.ID]uint64),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		logf:     func(string, ...any) {},
	}
}

// SetLogf installs a logger for connection-level errors (the default
// discards them; cmd/hyperserver passes log.Printf).
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// Serve starts accepting connections on ln and returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.closed:
					return
				default:
					s.logf("remote: accept: %v", err)
					return
				}
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Close stops accepting connections, disconnects active clients and
// waits for handlers to finish.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Stats reports commit/abort/fetch counters.
func (s *Server) Stats() (commits, aborts, fetches uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.aborts, s.fetches
}

func (s *Server) handle(conn net.Conn) {
	s.connMu.Lock()
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		req, err := readFrame(conn)
		if err != nil {
			return // client went away
		}
		if len(req) == 0 {
			s.respondErr(conn, errors.New("remote: empty request"))
			continue
		}
		var resp []byte
		var rerr error
		conflict := false
		switch req[0] {
		case opGetPage:
			resp, rerr = s.getPage(req[1:])
		case opGetPages:
			resp, rerr = s.getPages(req[1:])
		case opAlloc:
			resp, rerr = s.alloc(req[1:])
		case opRoots:
			resp, rerr = s.roots()
		case opCommit:
			resp, conflict, rerr = s.commit(req[1:])
		case opStats:
			resp, rerr = s.statsResp()
		case opPing:
			resp = nil
		default:
			rerr = fmt.Errorf("remote: unknown opcode %d", req[0])
		}
		switch {
		case conflict:
			if err := writeFrame(conn, []byte{statusConflict}); err != nil {
				return
			}
		case rerr != nil:
			if !s.respondErr(conn, rerr) {
				return
			}
		default:
			if err := writeFrame(conn, append([]byte{statusOK}, resp...)); err != nil {
				return
			}
		}
	}
}

func (s *Server) respondErr(conn net.Conn, err error) bool {
	s.logf("remote: request failed: %v", err)
	return writeFrame(conn, append([]byte{statusError}, err.Error()...)) == nil
}

func (s *Server) getPage(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, errors.New("remote: bad GetPage request")
	}
	id := page.ID(binary.LittleEndian.Uint64(body))
	s.mu.Lock()
	defer s.mu.Unlock()
	h, err := s.st.Get(id)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	s.fetches++
	resp := make([]byte, 8+page.Size)
	binary.LittleEndian.PutUint64(resp, s.versions[id])
	copy(resp[8:], h.Page().Bytes())
	return resp, nil
}

func (s *Server) getPages(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, errors.New("remote: bad GetPages request")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > maxBatchPages || len(body) != 4+8*n {
		return nil, errors.New("remote: bad GetPages request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, n*(8+page.Size))
	off := 0
	for i := 0; i < n; i++ {
		id := page.ID(binary.LittleEndian.Uint64(body[4+8*i:]))
		h, err := s.st.Get(id)
		if err != nil {
			return nil, fmt.Errorf("remote: GetPages item %d (page %d): %w", i, id, err)
		}
		s.fetches++
		binary.LittleEndian.PutUint64(resp[off:], s.versions[id])
		copy(resp[off+8:], h.Page().Bytes())
		h.Release()
		off += 8 + page.Size
	}
	return resp, nil
}

func (s *Server) alloc(body []byte) ([]byte, error) {
	if len(body) != 1 {
		return nil, errors.New("remote: bad Alloc request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, h, err := s.st.Alloc(page.Type(body[0]))
	if err != nil {
		return nil, err
	}
	h.Release()
	// Reallocated pages keep their version history, so the client must
	// learn the current version, not assume zero.
	resp := binary.LittleEndian.AppendUint64(nil, uint64(id))
	return binary.LittleEndian.AppendUint64(resp, s.versions[id]), nil
}

func (s *Server) roots() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, 8+8*store.NumRoots)
	binary.LittleEndian.PutUint64(resp, s.versions[rootsVersionKey])
	for i := 0; i < store.NumRoots; i++ {
		binary.LittleEndian.PutUint64(resp[8+8*i:], uint64(s.st.Root(i)))
	}
	return resp, nil
}

func (s *Server) commit(body []byte) (resp []byte, conflict bool, err error) {
	req, err := decodeCommit(body)
	if err != nil {
		return nil, false, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// Optimistic validation: every page (and the root directory) the
	// client read must still be at the version it saw.
	for _, r := range req.reads {
		if s.versions[r.id] != r.version {
			s.aborts++
			return nil, true, nil
		}
	}

	for _, w := range req.writes {
		h, err := s.st.Get(w.id)
		if err != nil {
			return nil, false, fmt.Errorf("remote: commit write page %d: %w", w.id, err)
		}
		copy(h.Page().Bytes(), w.image)
		h.MarkDirty()
		h.Release()
		s.versions[w.id]++
	}
	for _, r := range req.roots {
		s.st.SetRoot(r.slot, r.id)
	}
	if len(req.roots) > 0 {
		s.versions[rootsVersionKey]++
	}
	for _, id := range req.frees {
		if err := s.st.Free(id); err != nil {
			return nil, false, fmt.Errorf("remote: commit free page %d: %w", id, err)
		}
		s.versions[id]++
	}
	if err := s.st.Commit(); err != nil {
		return nil, false, err
	}
	s.commits++
	return nil, false, nil
}

func (s *Server) statsResp() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, 24)
	binary.LittleEndian.PutUint64(resp[0:], s.commits)
	binary.LittleEndian.PutUint64(resp[8:], s.aborts)
	binary.LittleEndian.PutUint64(resp[16:], s.fetches)
	return resp, nil
}

// ListenAndServeStore is a convenience for cmd/hyperserver: open the
// store at path, serve on addr, and block until the listener fails.
func ListenAndServeStore(path, addr string, opts *store.Options) error {
	st, err := store.Open(path, opts)
	if err != nil {
		return err
	}
	defer st.Close()
	srv := NewServer(st)
	srv.SetLogf(log.Printf)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("hyperserver: serving %s on %s", path, ln.Addr())
	srv.Serve(ln)
	srv.wg.Wait()
	return nil
}
