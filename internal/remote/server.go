package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/pager"
	"hypermodel/internal/storage/store"
)

// Server exposes a local page store to workstation clients over TCP.
// The server machine remains the coordination point, as in the
// centralized-control architectures the paper discusses under R6, but
// neither reads nor commits queue one-at-a-time behind it: page
// fetches are served from the store's committed ReadView (when the
// space offers one), so N connections fetch in parallel with each
// other and with an in-flight commit; and concurrent commit requests
// are group-committed — a leader absorbs the queue, validates each
// transaction's read set against the newest versions, and flushes the
// whole batch under a single WAL fsync, so commit throughput scales
// with writer concurrency instead of serializing on the sync. A space
// that offers no read view (a fault-injection wrapper, say) degrades
// to serialized fetches; SetGroupCommit(false) restores serialized
// commits as a measurable baseline.
//
// The server is hardened against misbehaving clients and networks: a
// malformed frame gets a statusBadRequest answer (and the connection
// survives), a panic while executing one request is confined to that
// request, idle connections are reaped by a read deadline, and a
// max-connection limit refuses excess clients cleanly instead of
// accepting work it cannot serve.
type Server struct {
	// mu is the writer lock: commits, allocations and commit-token
	// bookkeeping hold it. Fetches served off the read view do not.
	mu sync.Mutex
	st store.Space
	// view is st's committed read view, when st offers one. nil means
	// every request serializes under mu.
	view *store.ReadView
	// versionMu guards the optimistic-concurrency version table, which
	// parallel fetch handlers read while a commit bumps it. A fetch
	// must read the version before the page bytes, and a commit must
	// bump versions only after the store has installed the new images:
	// then a racing fetch can only pair an old version with new bytes —
	// a spurious abort at validation time — never the reverse, which
	// would be a lost update.
	versionMu sync.Mutex
	versions  map[page.ID]uint64 // bumped on every committed write

	ln      net.Listener
	wg      sync.WaitGroup
	connMu  sync.Mutex
	conns   map[net.Conn]struct{}
	closed  chan struct{}
	commits atomic.Uint64
	aborts  atomic.Uint64
	fetches atomic.Uint64

	// commitSeq counts applied transactions. Clients learn it from the
	// roots fetch and from every commit acknowledgement, and send it
	// back as the snapshot their reads are based on: a commit whose
	// snapshot still equals commitSeq at validation time needs no
	// per-page read-set check, because nothing has committed since the
	// client's caches were known-current.
	commitSeq atomic.Uint64

	// Group-commit queue: concurrent commit requests enqueue here; the
	// first becomes the leader and drains the queue batch by batch,
	// validating and applying each transaction in arrival order and
	// flushing the whole batch under one store commit (one WAL fsync).
	// Guarded by gcMu. SetGroupCommit(false) restores the serialized
	// one-fsync-per-commit baseline.
	gcMu     sync.Mutex
	gcQueue  []*commitJob
	gcActive bool
	noGroup  bool

	// Commit batching counters (see GroupCommitStats).
	gcFlushes atomic.Uint64
	gcBatches atomic.Uint64
	gcGrouped atomic.Uint64
	gcMax     atomic.Uint64
	fastOK    atomic.Uint64

	// Commit-token dedup ring: the tokens of the most recent applied
	// commits, so a commit resent after a lost acknowledgement is
	// recognized and answered OK without being applied twice. Guarded
	// by mu.
	tokens     map[uint64]struct{}
	tokenLog   []uint64 // insertion order; oldest evicted past tokenRingSize
	dupCommits atomic.Uint64

	// Two-phase commit state for cross-shard transactions. prepared
	// holds the in-doubt entries (token → staged write set metadata);
	// abortedT/abortedLog remember durable abort decisions so a
	// participant polling for an outcome gets a definite answer.
	// All guarded by mu.
	prepared   map[uint64]*prepEntry
	abortedT   map[uint64]struct{}
	abortedLog []uint64

	// Shard identity and the routing table served by opRouteTable.
	// shardID is this server's position in the table (set before
	// Serve); the table itself is swappable at runtime under routeMu.
	shardID    int
	routeMu    sync.Mutex
	routeEpoch uint64
	routeAddrs []string

	// In-doubt resolver configuration (see SetResolver) and counters.
	resolveEvery    time.Duration
	prepareAge      time.Duration
	resolverOnce    sync.Once
	crossPrepares   atomic.Uint64
	crossCommits    atomic.Uint64
	crossAborts     atomic.Uint64
	resolvedInDoubt atomic.Uint64

	// verBase rebases every published page version after a restart:
	// the version table is in-memory, so without it a restarted server
	// would hand out versions starting from zero again and a client
	// holding pre-restart versions could validate against the wrong
	// history. Shifting the store's committed sequence left 16 bits
	// leaves room for 65536 version bumps per flush epoch — far beyond
	// any real batch — so post-restart versions never collide with
	// pre-restart ones.
	verBase uint64

	idleTimeout time.Duration
	maxConns    int
	maxInflight int
	// globalSem, when non-nil, caps requests in flight across ALL
	// connections (see SetMaxInflightTotal) — the knob that models a
	// shard process of fixed capacity in the E20 scaling sweep.
	globalSem chan struct{}
	// serviceTime is a per-request execution-time floor (see
	// SetServiceTime); zero disables it.
	serviceTime time.Duration
	maxTotal    int
	closeOnce   sync.Once
	refused     atomic.Uint64
	corrupt     atomic.Uint64 // requests answered with statusCorrupt

	// Request-level accounting, independent of the connection
	// counters: one multiplexed connection can carry many concurrent
	// requests, so requests and connections are counted separately.
	reqsTotal    atomic.Uint64
	reqsInflight atomic.Int64
	reqsPeak     atomic.Int64

	logf func(format string, args ...any)
}

// tokenRingSize bounds the commit-token dedup memory. A client
// resolves commit uncertainty immediately after reconnecting, so only
// the last few commits ever need to be recognized; 4096 leaves orders
// of magnitude of slack.
const tokenRingSize = 4096

// rootsVersionKey is the pseudo-page whose version covers the root
// directory, so root changes participate in optimistic validation.
const rootsVersionKey = page.ID(0)

// abortRingSize bounds the server's memory of abort decisions. An
// in-doubt participant polls its coordinator within a resolver tick or
// two, so only recent aborts ever need to be answered; an abort that
// ages out leaves the poller waiting (safe) rather than guessing.
const abortRingSize = 1024

// prepEntry is one transaction in the prepared-but-undecided state.
// locked is the full footprint (reads, writes, frees, root key) other
// transactions must not invalidate while this one is in doubt; writes
// is the write set alone, which a new prepare's reads must also avoid.
// A recovered entry (rebuilt from the store's WAL after a restart) has
// locked == nil — its read set is unrecoverable, so it conflicts with
// everything until the resolver decides it.
type prepEntry struct {
	at           time.Time
	req          *commitReq // live prepares only; nil after recovery
	writeIDs     []page.ID
	freeIDs      []page.ID
	rootsTouched bool
	locked       map[page.ID]struct{}
	writes       map[page.ID]struct{}
}

// twoPhaseStore is the optional store capability backing durable
// prepares: Prepare stages a write set behind a WAL barrier without
// applying it, DecidePrepared applies or durably aborts it. A space
// without it (a fault-injection wrapper, say) still supports 2PC with
// memory-only prepares — durable across nothing, but correct while the
// process lives.
type twoPhaseStore interface {
	Prepare(token uint64, images []store.PageImage, roots []store.RootUpdate, frees []page.ID) error
	DecidePrepared(token uint64, commit bool) error
}

// recoveredTwoPhase is the store capability a restarted server seeds
// its 2PC memory from: tokens of applied commits, durable abort
// decisions, and transactions still in doubt.
type recoveredTwoPhase interface {
	RecoveredTokens() []uint64
	RecoveredAborts() []uint64
	PreparedTxns() []*store.PreparedTxn
}

// commitJob is one queued commit request and the channel its dispatch
// goroutine blocks on until a leader's flush decides it.
type commitJob struct {
	req  *commitReq
	resp chan commitResult
}

// commitResult is the outcome of one queued commit: the server commit
// sequence after it applied (echoed to the client as its new
// snapshot), a validation conflict, or a hard error.
type commitResult struct {
	seq      uint64
	conflict bool
	err      error
}

// tokenCommitter is the optional store capability a group-commit
// leader uses to stamp the batch's transaction tokens into the WAL's
// commit barrier. A space without it (a fault-injection wrapper, say)
// still commits the batch atomically under a plain Commit.
type tokenCommitter interface {
	CommitTokens(tokens []uint64) error
}

// NewServer wraps an open page space. The caller keeps ownership and
// closes it after the server stops. Taking the Space interface (rather
// than *store.Store) lets tests interpose fault injection between the
// server and its storage; a space that additionally offers a committed
// ReadView (as *store.Store does) gets the parallel fetch path.
func NewServer(st store.Space) *Server {
	s := &Server{
		st:       st,
		versions: make(map[page.ID]uint64),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		tokens:   make(map[uint64]struct{}),
		prepared: make(map[uint64]*prepEntry),
		abortedT: make(map[uint64]struct{}),
		logf:     func(string, ...any) {},
	}
	if v, ok := st.(interface{ ReadView() *store.ReadView }); ok {
		s.view = v.ReadView()
	}
	if sq, ok := st.(interface{ Seq() uint64 }); ok {
		s.verBase = sq.Seq() << 16
		s.commitSeq.Store(s.verBase)
	}
	if rp, ok := st.(recoveredTwoPhase); ok {
		// Seed the dedup ring and abort memory from what recovery
		// replayed, so a commit or decide resent across our restart is
		// recognized instead of reapplied; rebuild the in-doubt entries
		// so their footprints stay interlocked until the resolver (or
		// the coordinator's client) decides them.
		for _, tok := range rp.RecoveredTokens() {
			s.recordTokenLocked(tok)
		}
		for _, tok := range rp.RecoveredAborts() {
			s.recordAbortLocked(tok)
		}
		for _, pt := range rp.PreparedTxns() {
			e := &prepEntry{at: time.Now(), rootsTouched: len(pt.Roots) > 0}
			for _, pi := range pt.Images {
				e.writeIDs = append(e.writeIDs, pi.ID)
			}
			e.freeIDs = append([]page.ID(nil), pt.Frees...)
			s.prepared[pt.Token] = e
		}
	}
	return s
}

// SetLogf installs a logger for connection-level errors (the default
// discards them; cmd/hyperserver passes log.Printf).
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// SetIdleTimeout bounds how long a connection may sit idle between
// requests before the server reaps it (zero, the default, means
// forever). Must be set before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// SetMaxConns caps concurrent client connections; excess connections
// are refused with a "server busy" error frame and closed (zero, the
// default, means unlimited). Must be set before Serve.
func (s *Server) SetMaxConns(n int) { s.maxConns = n }

// SetMaxInflight caps how many requests one connection may have
// dispatched concurrently (zero, the default, means unlimited). Excess
// requests are not refused: the connection's read loop simply stops
// pulling frames until a slot frees, so the cap backpressures through
// TCP instead of failing work. Must be set before Serve.
func (s *Server) SetMaxInflight(n int) { s.maxInflight = n }

// SetMaxInflightTotal caps how many requests the whole server may have
// dispatched concurrently, across every connection (zero, the default,
// means unlimited). Like SetMaxInflight, excess requests backpressure
// through TCP rather than failing: read loops stop pulling frames until
// a slot frees. This is the knob that models a shard process of fixed
// service capacity — per-connection caps cannot, because adding
// connections adds capacity. Must be set before Serve.
func (s *Server) SetMaxInflightTotal(n int) { s.maxTotal = n }

// SetServiceTime gives every request a fixed minimum execution time
// while it occupies its inflight slots. Real page servers spend CPU
// and disk time per request; on a loopback test rig execution is
// near-instant, so the inflight caps never bind and a "capacity"
// experiment measures only the wire. With a service time d and a
// server-wide cap of n (SetMaxInflightTotal), the shard's capacity is
// n/d requests per second — the fixed-capacity process model the E20
// scaling sweep needs. Zero (the default) disables the floor. Must be
// set before Serve.
func (s *Server) SetServiceTime(d time.Duration) { s.serviceTime = d }

// SetShardID declares this server's position in the cluster routing
// table (default 0 — a standalone server is shard 0 of 1). The shard ID
// of a commit token's coordinator is carried in the token's top byte,
// so the in-doubt resolver compares against this to tell its own
// coordinated transactions from ones it must poll a peer for. Must be
// set before Serve.
func (s *Server) SetShardID(id int) { s.shardID = id }

// SetRouteTable installs the routing table this server hands to
// clients via opRouteTable: the table epoch and the shard addresses in
// shard-ID order. Safe to call at runtime; clients adopt a new table
// only when its epoch is higher than the one they hold.
func (s *Server) SetRouteTable(epoch uint64, addrs []string) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	s.routeEpoch = epoch
	s.routeAddrs = append([]string(nil), addrs...)
}

// SetResolver tunes the in-doubt resolver: how often it scans the
// prepared table, and how old an undecided entry must be before it is
// resolved (polling the coordinator for a peer's transaction, presuming
// abort for one of our own). Zero keeps a default (500ms, 5s). Must be
// set before Serve.
func (s *Server) SetResolver(every, age time.Duration) {
	s.resolveEvery = every
	s.prepareAge = age
}

// CrossCommitStats reports the two-phase commit counters: prepares
// accepted, cross-shard transactions committed and aborted here, and
// in-doubt entries the background resolver decided.
func (s *Server) CrossCommitStats() (prepares, commits, aborts, resolved uint64) {
	return s.crossPrepares.Load(), s.crossCommits.Load(), s.crossAborts.Load(), s.resolvedInDoubt.Load()
}

// PreparedCount reports how many transactions are currently in the
// prepared-but-undecided state — zero once every in-doubt transaction
// has been resolved.
func (s *Server) PreparedCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.prepared)
}

// SetGroupCommit toggles commit batching. Enabled (the default),
// concurrent commits queue behind a leader that flushes them under one
// fsync; disabled, every commit fsyncs alone — the serialized baseline
// the E19 experiment measures against. Must be set before Serve.
func (s *Server) SetGroupCommit(enabled bool) { s.noGroup = !enabled }

// GroupCommitStats reports commit batching counters: store flushes
// serving commits, flushes that carried more than one transaction, the
// total transactions that shared a flush, the largest batch, and
// commits validated by the snapshot fast path (read-set scan skipped).
func (s *Server) GroupCommitStats() (flushes, batches, grouped, maxBatch, fastPath uint64) {
	return s.gcFlushes.Load(), s.gcBatches.Load(), s.gcGrouped.Load(), s.gcMax.Load(), s.fastOK.Load()
}

// CommitSeq reports the number of transactions applied since startup —
// the logical clock clients pin their snapshots to.
func (s *Server) CommitSeq() uint64 { return s.commitSeq.Load() }

// Serve starts accepting connections on ln and returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	if s.maxTotal > 0 && s.globalSem == nil {
		s.globalSem = make(chan struct{}, s.maxTotal)
	}
	s.resolverOnce.Do(func() {
		s.wg.Add(1)
		go s.resolveLoop()
	})
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.closed:
					return
				default:
					s.logf("remote: accept: %v", err)
					return
				}
			}
			if !s.admit(conn) {
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// admit registers the connection, or refuses it cleanly when the
// server is at its connection limit.
func (s *Server) admit(conn net.Conn) bool {
	s.connMu.Lock()
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		s.refused.Add(1)
		s.connMu.Unlock()
		s.logf("remote: refusing %s: connection limit (%d) reached", conn.RemoteAddr(), s.maxConns)
		// A well-formed refusal frame on the reserved connection-level
		// request ID, so the client fails every request it has pending
		// on this connection with a ServerError instead of a silent
		// close.
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		writeFrame(conn, s.respFrame(connReqID, statusError, []byte("server busy")))
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	return true
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Close stops accepting connections, disconnects active clients
// immediately and waits for handlers to finish. Idempotent.
func (s *Server) Close() error {
	return s.Shutdown(0)
}

// Shutdown stops the server gracefully: the listener closes (new
// connections are refused by the OS), requests already dispatched get
// up to timeout to drain and have their responses written, and only
// then are the remaining connections closed. Shutdown(0) degrades to
// an immediate Close. Idempotent and safe to call concurrently — the
// first caller wins and later calls return after it finishes.
func (s *Server) Shutdown(timeout time.Duration) error {
	var err error
	s.closeOnce.Do(func() {
		close(s.closed)
		if s.ln != nil {
			err = s.ln.Close()
		}
		if timeout > 0 {
			deadline := time.Now().Add(timeout)
			for s.reqsInflight.Load() > 0 && time.Now().Before(deadline) {
				time.Sleep(2 * time.Millisecond)
			}
		}
		s.connMu.Lock()
		for conn := range s.conns {
			conn.Close()
		}
		s.connMu.Unlock()
	})
	s.wg.Wait()
	return err
}

// Stats reports commit/abort/fetch counters. All three are atomic, so
// Stats never queues behind an in-flight commit or fetch.
func (s *Server) Stats() (commits, aborts, fetches uint64) {
	return s.commits.Load(), s.aborts.Load(), s.fetches.Load()
}

// FaultStats reports the fault-tolerance counters: duplicate commits
// absorbed by the token ring, and connections refused at the limit.
func (s *Server) FaultStats() (dupCommits, refused uint64) {
	return s.dupCommits.Load(), s.refused.Load()
}

// CorruptServed reports how many requests were answered with a
// corrupt-page status — each one is a page whose stored image failed
// validation, worth an operator's scrub.
func (s *Server) CorruptServed() uint64 { return s.corrupt.Load() }

// RequestStats reports request-level counters: total request frames
// read and the peak number dispatched concurrently across all
// connections. These move independently of the connection counters —
// one multiplexed connection can put hundreds of requests in flight —
// which is why SetMaxConns refusal and FaultStats stay keyed to
// connections while the load picture lives here.
func (s *Server) RequestStats() (total, peakInflight uint64) {
	return s.reqsTotal.Load(), uint64(s.reqsPeak.Load())
}

// ConnCount reports how many client connections are currently open.
func (s *Server) ConnCount() int {
	s.connMu.Lock()
	defer s.connMu.Unlock()
	return len(s.conns)
}

// badRequestError marks a failure the client caused (malformed frame,
// unknown opcode) as opposed to a server-side fault. The distinction
// drives both the response status and the logging: a bad request is
// the client's bug, a server fault is ours.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

// handle runs one multiplexed connection: the read loop pulls request
// frames and dispatches each on its own goroutine; responses — possibly
// out of order — funnel through respCh into a single writer goroutine,
// which is the only thing that touches the connection's write side.
func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()

	respCh := make(chan []byte, 32)
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		dead := false
		for frame := range respCh {
			if dead {
				continue // drain so dispatchers never block on a dead peer
			}
			if err := writeFrame(conn, frame); err != nil {
				dead = true
				conn.Close() // unblocks the read loop too
				continue
			}
			if s.idleTimeout > 0 {
				// A connection receiving responses is not idle, even if
				// the client is quiet while it waits on them.
				conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
			}
		}
	}()

	var reqWG sync.WaitGroup
	var sem chan struct{}
	if s.maxInflight > 0 {
		sem = make(chan struct{}, s.maxInflight)
	}
	for {
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		req, err := readFrame(conn)
		if err != nil {
			break // client went away (or idled out)
		}
		s.reqsTotal.Add(1)
		if len(req) < muxHeaderLen {
			// No request ID to echo: answer on the connection-level ID.
			respCh <- s.respFrame(connReqID, statusBadRequest, []byte("remote: frame too short for a request ID"))
			continue
		}
		if sem != nil {
			sem <- struct{}{}
		}
		if s.globalSem != nil {
			// The server-wide capacity gate: like the per-connection
			// sem, it blocks the read loop (backpressure through TCP)
			// rather than refusing the request.
			s.globalSem <- struct{}{}
		}
		in := s.reqsInflight.Add(1)
		for {
			p := s.reqsPeak.Load()
			if in <= p || s.reqsPeak.CompareAndSwap(p, in) {
				break
			}
		}
		reqWG.Add(1)
		go func(req []byte) {
			defer reqWG.Done()
			defer s.reqsInflight.Add(-1)
			if sem != nil {
				defer func() { <-sem }()
			}
			if s.globalSem != nil {
				defer func() { <-s.globalSem }()
			}
			id := frameID(req)
			if s.serviceTime > 0 {
				time.Sleep(s.serviceTime)
			}
			resp, conflict, rerr := s.dispatch(req[muxHeaderLen:])
			switch {
			case conflict:
				respCh <- s.respFrame(id, statusConflict, nil)
			case rerr != nil:
				respCh <- s.errFrame(conn.RemoteAddr(), id, rerr)
			default:
				respCh <- s.respFrame(id, statusOK, resp)
			}
		}(req)
	}
	reqWG.Wait() // in-flight requests still get their answers written
	close(respCh)
	<-writerDone
}

// respFrame assembles one response frame: request ID, status byte,
// payload. The server's single appendFrameID site — the opcodes
// analyzer pins the framing encoder here so it cannot drift from the
// client's decoder.
func (s *Server) respFrame(id uint64, status byte, payload []byte) []byte {
	b := make([]byte, 0, muxHeaderLen+1+len(payload))
	b = appendFrameID(b, id)
	b = append(b, status)
	return append(b, payload...)
}

// dispatch executes one request frame. A panic while executing it is
// confined to the request — the handler recovers, answers with a
// server error, and the connection (and server) live on.
func (s *Server) dispatch(req []byte) (resp []byte, conflict bool, rerr error) {
	defer func() {
		if r := recover(); r != nil {
			resp, conflict = nil, false
			rerr = fmt.Errorf("remote: panic while serving request: %v", r)
		}
	}()
	if len(req) == 0 {
		return nil, false, badReq("remote: empty request")
	}
	switch req[0] {
	case opGetPage:
		resp, rerr = s.getPage(req[1:])
	case opGetPages:
		resp, rerr = s.getPages(req[1:])
	case opAlloc:
		resp, rerr = s.alloc(req[1:])
	case opRoots:
		resp, rerr = s.roots()
	case opCommit:
		resp, conflict, rerr = s.commit(req[1:])
	case opPrepare:
		resp, conflict, rerr = s.prepare(req[1:])
	case opDecide:
		resp, conflict, rerr = s.decide(req[1:])
	case opRouteTable:
		resp, rerr = s.routeTableResp()
	case opCommitCheck:
		resp, rerr = s.commitCheck(req[1:])
	case opStats:
		resp, rerr = s.statsResp()
	case opPing:
		resp = nil
	default:
		rerr = badReq("remote: unknown opcode %d", req[0])
	}
	return resp, conflict, rerr
}

// errFrame builds the response frame for a failed request,
// distinguishing client-caused errors (statusBadRequest, the client's
// bug) from server faults (statusError, ours — logged with the peer's
// address so an operator can correlate). Storage corruption gets its
// own status so the client can resurface the typed error: the damage
// is on the server's disk, and the client must report it per page
// rather than retry or fail the connection.
func (s *Server) errFrame(peer net.Addr, id uint64, err error) []byte {
	var br *badRequestError
	if errors.As(err, &br) {
		s.logf("remote: bad request from %s: %v", peer, err)
		return s.respFrame(id, statusBadRequest, []byte(err.Error()))
	}
	var ce *pager.ErrCorruptPage
	if errors.As(err, &ce) {
		s.corrupt.Add(1)
		s.logf("remote: corrupt page served to %s: %v", peer, err)
		return s.respFrame(id, statusCorrupt, appendCorrupt(nil, ce))
	}
	s.logf("remote: server fault serving %s: %v", peer, err)
	return s.respFrame(id, statusError, []byte(err.Error()))
}

// pageVersion reads one version-table entry under the narrow lock.
// Published versions are rebased by verBase so a restart never reuses
// a version a client may still hold.
func (s *Server) pageVersion(id page.ID) uint64 {
	s.versionMu.Lock()
	defer s.versionMu.Unlock()
	return s.verBase + s.versions[id]
}

// fetchPage resolves one page to (version, handle). On the parallel
// path the version is read strictly before the bytes (see versionMu);
// without a read view the caller holds s.mu and order is moot.
func (s *Server) fetchPage(id page.ID) (uint64, store.Handle, error) {
	ver := s.pageVersion(id)
	sp := store.Space(s.st)
	if s.view != nil {
		sp = s.view
	}
	h, err := sp.Get(id)
	if err != nil {
		return 0, nil, err
	}
	s.fetches.Add(1)
	return ver, h, nil
}

func (s *Server) getPage(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, badReq("remote: bad GetPage request")
	}
	id := page.ID(binary.LittleEndian.Uint64(body))
	if s.view == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	ver, h, err := s.fetchPage(id)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	resp := make([]byte, 8+page.Size)
	binary.LittleEndian.PutUint64(resp, ver)
	copy(resp[8:], h.Page().Bytes())
	// Reseal the copy: an in-memory image may predate its first
	// write-out (a freshly allocated page, say), so its stored checksum
	// is not yet meaningful. Sealing here lets the client validate every
	// received image and distinguish transit corruption (refetchable)
	// from server-disk corruption (statusCorrupt above).
	page.SealBytes(resp[8:])
	return resp, nil
}

func (s *Server) getPages(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, badReq("remote: bad GetPages request")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > maxBatchPages || len(body) != 4+8*n {
		return nil, badReq("remote: bad GetPages request")
	}
	if s.view == nil {
		s.mu.Lock()
		defer s.mu.Unlock()
	}
	resp := make([]byte, n*(8+page.Size))
	off := 0
	for i := 0; i < n; i++ {
		id := page.ID(binary.LittleEndian.Uint64(body[4+8*i:]))
		ver, h, err := s.fetchPage(id)
		if err != nil {
			return nil, fmt.Errorf("remote: GetPages item %d (page %d): %w", i, id, err)
		}
		binary.LittleEndian.PutUint64(resp[off:], ver)
		copy(resp[off+8:], h.Page().Bytes())
		h.Release()
		page.SealBytes(resp[off+8:]) // see getPage
		off += 8 + page.Size
	}
	return resp, nil
}

func (s *Server) alloc(body []byte) ([]byte, error) {
	if len(body) != 1 {
		return nil, badReq("remote: bad Alloc request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, h, err := s.st.Alloc(page.Type(body[0]))
	if err != nil {
		return nil, err
	}
	h.Release()
	// Reallocated pages keep their version history, so the client must
	// learn the current version, not assume zero.
	resp := binary.LittleEndian.AppendUint64(nil, uint64(id))
	return binary.LittleEndian.AppendUint64(resp, s.pageVersion(id)), nil
}

func (s *Server) roots() ([]byte, error) {
	resp := make([]byte, 16+8*store.NumRoots)
	if s.view != nil {
		// Commit sequence first, then version, then roots: each read is
		// at least as old as the next, so a commit racing this fetch can
		// only make the client's snapshot conservative (it thinks the
		// state is older than it is and falls back to per-page
		// validation), never optimistic. All slots come from one
		// committed meta snapshot so the directory cannot be torn by a
		// concurrent commit.
		seq := s.commitSeq.Load()
		binary.LittleEndian.PutUint64(resp, s.pageVersion(rootsVersionKey))
		binary.LittleEndian.PutUint64(resp[8:], seq)
		roots := s.view.Roots()
		for i, id := range roots {
			binary.LittleEndian.PutUint64(resp[16+8*i:], uint64(id))
		}
		return resp, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	binary.LittleEndian.PutUint64(resp, s.verBase+s.versions[rootsVersionKey])
	binary.LittleEndian.PutUint64(resp[8:], s.commitSeq.Load())
	for i := 0; i < store.NumRoots; i++ {
		binary.LittleEndian.PutUint64(resp[16+8*i:], uint64(s.st.Root(i)))
	}
	return resp, nil
}

// tokenSeenLocked reports whether a commit token is in the applied
// ring. Callers hold s.mu.
func (s *Server) tokenSeenLocked(tok uint64) bool {
	_, ok := s.tokens[tok]
	return ok
}

// recordTokenLocked remembers an applied commit token, evicting the
// oldest past the ring size. Callers hold s.mu.
func (s *Server) recordTokenLocked(tok uint64) {
	if len(s.tokenLog) >= tokenRingSize {
		delete(s.tokens, s.tokenLog[0])
		s.tokenLog = s.tokenLog[1:]
	}
	s.tokens[tok] = struct{}{}
	s.tokenLog = append(s.tokenLog, tok)
}

func (s *Server) commit(body []byte) (resp []byte, conflict bool, err error) {
	req, err := decodeCommit(body)
	if err != nil {
		return nil, false, badReq("%v", err)
	}
	var r commitResult
	if s.noGroup {
		r = s.commitSerialized(req)
	} else {
		r = s.commitGrouped(req)
	}
	if r.err != nil || r.conflict {
		return nil, r.conflict, r.err
	}
	// The OK payload is the server commit sequence after this
	// transaction applied — the client's new snapshot.
	return binary.LittleEndian.AppendUint64(nil, r.seq), false, nil
}

// commitGrouped queues the request and blocks until a leader's batch
// flush decides it. The first goroutine to find the queue idle becomes
// the leader: it drains whatever has accumulated, runs the whole batch
// under one store commit, and keeps draining until the queue is empty
// before stepping down — so every commit that arrives while a flush is
// in progress rides the next batch instead of fsyncing alone.
func (s *Server) commitGrouped(req *commitReq) commitResult {
	job := &commitJob{req: req, resp: make(chan commitResult, 1)}
	s.gcMu.Lock()
	s.gcQueue = append(s.gcQueue, job)
	if s.gcActive {
		s.gcMu.Unlock()
	} else {
		s.gcActive = true
		for {
			batch := s.gcQueue
			s.gcQueue = nil
			if len(batch) == 0 {
				s.gcActive = false
				s.gcMu.Unlock()
				break
			}
			s.gcMu.Unlock()
			s.commitBatch(batch)
			s.gcMu.Lock()
		}
	}
	return <-job.resp
}

// commitBatch validates and applies a batch of queued transactions in
// arrival order and commits them under a single store flush. Later
// transactions in the batch validate against an overlay of the earlier
// ones' version bumps, so the batch is equivalent to running its
// members serially; the published version table and commitSeq advance
// only after the store commit succeeds, preserving the lost-update
// ordering documented on versionMu.
func (s *Server) commitBatch(batch []*commitJob) {
	s.mu.Lock()
	defer s.mu.Unlock()

	overlay := make(map[page.ID]uint64)
	rootBumps := uint64(0)
	var applied []*commitJob
	var tokens []uint64

	fail := func(err error) {
		// A half-applied write set cannot be peeled back per
		// transaction: drop every uncommitted application (best effort
		// — a plain store offers Abort; a fault wrapper may not) and
		// fail the whole batch. Clients retry with fresh caches.
		if ab, ok := s.st.(interface{ Abort() error }); ok {
			ab.Abort()
		}
		for _, j := range batch {
			select {
			case j.resp <- commitResult{err: err}:
			default: // already answered (dup or conflict)
			}
		}
	}

	for _, job := range batch {
		req := job.req
		// A token we have already applied means the client lost our
		// acknowledgement and resent: answer OK again, apply nothing.
		if req.token != 0 && s.tokenSeenLocked(req.token) {
			s.dupCommits.Add(1)
			job.resp <- commitResult{seq: s.commitSeq.Load()} //hyperlint:allow lockorder -- resp is buffered with capacity 1 and gets exactly one response per job; the send cannot park
			continue
		}
		if s.overlapsPreparedLocked(req, false) || s.staleLocked(req, overlay, rootBumps) {
			s.aborts.Add(1)
			job.resp <- commitResult{conflict: true} //hyperlint:allow lockorder -- resp is buffered with capacity 1 and gets exactly one response per job; the send cannot park
			continue
		}
		if err := s.applyLocked(req); err != nil {
			fail(err)
			return
		}
		for _, w := range req.writes {
			overlay[w.id]++
		}
		for _, id := range req.frees {
			overlay[id]++
		}
		if len(req.roots) > 0 {
			rootBumps++
		}
		if req.token != 0 {
			tokens = append(tokens, req.token)
		}
		applied = append(applied, job)
	}
	if len(applied) == 0 {
		return
	}

	// One store commit — one WAL barrier, one fsync — for the whole
	// batch, carrying every transaction's token so recovery and the
	// store's commit stats see N transactions, not one.
	var cerr error
	if tc, ok := s.st.(tokenCommitter); ok && len(tokens) > 0 {
		cerr = tc.CommitTokens(tokens)
	} else {
		cerr = s.st.Commit()
	}
	if cerr != nil {
		fail(cerr)
		return
	}

	// Versions advance only now that the store has installed the new
	// committed images: a fetch racing this commit pairs the old
	// version with either image — at worst a spurious abort when it
	// validates — whereas bumping before the install could pair a new
	// version with stale bytes, a lost update.
	s.versionMu.Lock()
	for id, n := range overlay {
		s.versions[id] += n
	}
	s.versions[rootsVersionKey] += rootBumps
	s.versionMu.Unlock()
	for _, tok := range tokens {
		s.recordTokenLocked(tok)
	}
	n := uint64(len(applied))
	s.commits.Add(n)
	s.commitSeq.Add(n)
	seq := s.commitSeq.Load()
	s.gcFlushes.Add(1)
	if n > 1 {
		s.gcBatches.Add(1)
		s.gcGrouped.Add(n)
	}
	for {
		m := s.gcMax.Load()
		if n <= m || s.gcMax.CompareAndSwap(m, n) {
			break
		}
	}
	for _, j := range applied {
		j.resp <- commitResult{seq: seq} //hyperlint:allow lockorder -- resp is buffered with capacity 1 and gets exactly one response per job; the send cannot park
	}
}

// staleLocked runs optimistic validation for one transaction: every
// page (and the root directory) the client read must still be at the
// version it saw, counting the version bumps earlier transactions in
// the same batch will publish. When the transaction's snapshot equals
// the current commit sequence and nothing has applied ahead of it in
// the batch, the per-page scan is skipped: the client's caches were
// known-current at that sequence and nothing has committed since.
// Callers hold s.mu.
func (s *Server) staleLocked(req *commitReq, overlay map[page.ID]uint64, rootBumps uint64) bool {
	s.versionMu.Lock()
	defer s.versionMu.Unlock()
	if req.snapshot != 0 && req.snapshot == s.commitSeq.Load() && len(overlay) == 0 && rootBumps == 0 {
		s.fastOK.Add(1)
		return false
	}
	for _, r := range req.reads {
		eff := s.verBase + s.versions[r.id] + overlay[r.id]
		if r.id == rootsVersionKey {
			eff += rootBumps
		}
		if eff != r.version {
			return true
		}
	}
	return false
}

// applyLocked copies one validated transaction's write set, root
// updates and frees into the store's working state (uncommitted).
// Callers hold s.mu.
func (s *Server) applyLocked(req *commitReq) error {
	for _, w := range req.writes {
		h, err := s.st.Get(w.id)
		if err != nil {
			return fmt.Errorf("remote: commit write page %d: %w", w.id, err)
		}
		copy(h.Page().Bytes(), w.image)
		h.MarkDirty()
		h.Release()
	}
	for _, r := range req.roots {
		s.st.SetRoot(r.slot, r.id)
	}
	for _, id := range req.frees {
		if err := s.st.Free(id); err != nil {
			return fmt.Errorf("remote: commit free page %d: %w", id, err)
		}
	}
	return nil
}

// commitSerialized is the pre-group-commit path, kept as the
// measurable baseline (SetGroupCommit(false)): one transaction, one
// store commit, one fsync, all under s.mu end to end.
func (s *Server) commitSerialized(req *commitReq) commitResult {
	s.mu.Lock()
	defer s.mu.Unlock()

	if req.token != 0 && s.tokenSeenLocked(req.token) {
		s.dupCommits.Add(1)
		return commitResult{seq: s.commitSeq.Load()}
	}
	if s.overlapsPreparedLocked(req, false) || s.staleLocked(req, nil, 0) {
		s.aborts.Add(1)
		return commitResult{conflict: true}
	}
	if err := s.applyLocked(req); err != nil {
		if ab, ok := s.st.(interface{ Abort() error }); ok {
			ab.Abort()
		}
		return commitResult{err: err}
	}
	var cerr error
	if tc, ok := s.st.(tokenCommitter); ok && req.token != 0 {
		cerr = tc.CommitTokens([]uint64{req.token})
	} else {
		cerr = s.st.Commit()
	}
	if cerr != nil {
		return commitResult{err: cerr}
	}
	s.versionMu.Lock()
	for _, w := range req.writes {
		s.versions[w.id]++
	}
	if len(req.roots) > 0 {
		s.versions[rootsVersionKey]++
	}
	for _, id := range req.frees {
		s.versions[id]++
	}
	s.versionMu.Unlock()
	if req.token != 0 {
		s.recordTokenLocked(req.token)
	}
	s.commits.Add(1)
	s.commitSeq.Add(1)
	s.gcFlushes.Add(1)
	return commitResult{seq: s.commitSeq.Load()}
}

// commitCheck answers what is known about a commit token: committed,
// aborted, or unknown. The first is the resolution step for a client
// whose connection died mid-commit; all three serve an in-doubt 2PC
// participant polling the coordinator. Unknown covers both "never
// heard of it" and "prepared but undecided" — a token that aged out of
// every ring also answers unknown, because guessing aborted for a
// forgotten committed token would let a participant drop applied
// writes. The poller keeps waiting; the coordinator's own resolver
// timeout turns a genuinely dead transaction into a durable abort it
// can report.
func (s *Server) commitCheck(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, badReq("remote: bad CommitCheck request")
	}
	tok := binary.LittleEndian.Uint64(body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokenSeenLocked(tok) {
		return []byte{checkCommitted}, nil
	}
	if _, ok := s.abortedT[tok]; ok {
		return []byte{checkAborted}, nil
	}
	return []byte{checkUnknown}, nil
}

// recordAbortLocked remembers a durable abort decision, evicting the
// oldest past the ring size. Callers hold s.mu (or run before the
// server is shared).
func (s *Server) recordAbortLocked(tok uint64) {
	if tok == 0 {
		return
	}
	if _, ok := s.abortedT[tok]; ok {
		return
	}
	if len(s.abortedLog) >= abortRingSize {
		delete(s.abortedT, s.abortedLog[0])
		s.abortedLog = s.abortedLog[1:]
	}
	s.abortedT[tok] = struct{}{}
	s.abortedLog = append(s.abortedLog, tok)
}

// overlapsPreparedLocked reports whether a request's footprint
// collides with any prepared-but-undecided transaction. Writing,
// freeing or re-rooting anything an in-doubt transaction read or wrote
// must wait for the decision (else a later commit-decision would
// clobber it, or the in-doubt read set would be silently invalidated
// after its validation already passed). A new prepare additionally
// must not read an in-doubt write — its own validation could otherwise
// succeed against bytes that are about to change. A plain commit that
// only reads an in-doubt write target is allowed: it serializes before
// the undecided transaction. Callers hold s.mu.
func (s *Server) overlapsPreparedLocked(req *commitReq, isPrepare bool) bool {
	if len(s.prepared) == 0 {
		return false
	}
	for _, e := range s.prepared {
		if e.locked == nil {
			// Recovered after a restart: the read set did not survive,
			// so the entry conflicts with everything until resolved.
			return true
		}
		for _, w := range req.writes {
			if _, ok := e.locked[w.id]; ok {
				return true
			}
		}
		for _, id := range req.frees {
			if _, ok := e.locked[id]; ok {
				return true
			}
		}
		if len(req.roots) > 0 {
			if _, ok := e.locked[rootsVersionKey]; ok {
				return true
			}
		}
		if isPrepare {
			for _, r := range req.reads {
				if _, ok := e.writes[r.id]; ok {
					return true
				}
			}
		}
	}
	return false
}

// prepare stages one shard's slice of a cross-shard transaction: the
// same payload as a commit, validated the same way (token dedup, the
// prepared-transaction interlock, optimistic read-set validation), but
// on success the write set is forced to the WAL behind a prepare
// barrier and applied nowhere — the transaction is now a yes-vote that
// survives a crash and can only leave the prepared state through
// opDecide (or the in-doubt resolver). Conflict answers are final: the
// client aborts the whole transaction on every shard.
func (s *Server) prepare(body []byte) (resp []byte, conflict bool, rerr error) {
	req, err := decodeCommit(body)
	if err != nil {
		return nil, false, badReq("%v", err)
	}
	if req.token == 0 {
		return nil, false, badReq("remote: prepare requires a commit token")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokenSeenLocked(req.token) {
		// Already decided commit (a resent prepare after a lost
		// acknowledgement): the yes-vote stands.
		s.dupCommits.Add(1)
		return nil, false, nil
	}
	if _, ok := s.abortedT[req.token]; ok {
		return nil, true, nil // already decided abort
	}
	if _, ok := s.prepared[req.token]; ok {
		return nil, false, nil // idempotent re-prepare
	}
	if s.overlapsPreparedLocked(req, true) || s.staleLocked(req, nil, 0) {
		s.aborts.Add(1)
		return nil, true, nil
	}
	e := &prepEntry{
		at:           time.Now(),
		req:          req,
		rootsTouched: len(req.roots) > 0,
		locked:       make(map[page.ID]struct{}, len(req.reads)+len(req.writes)+len(req.frees)),
		writes:       make(map[page.ID]struct{}, len(req.writes)),
	}
	for _, r := range req.reads {
		e.locked[r.id] = struct{}{}
	}
	for _, w := range req.writes {
		e.locked[w.id] = struct{}{}
		e.writes[w.id] = struct{}{}
		e.writeIDs = append(e.writeIDs, w.id)
	}
	for _, id := range req.frees {
		e.locked[id] = struct{}{}
		e.freeIDs = append(e.freeIDs, id)
	}
	if e.rootsTouched {
		e.locked[rootsVersionKey] = struct{}{}
	}
	if tp, ok := s.st.(twoPhaseStore); ok {
		images := make([]store.PageImage, 0, len(req.writes))
		for _, w := range req.writes {
			img := &page.Page{}
			copy(img.Bytes(), w.image)
			images = append(images, store.PageImage{ID: w.id, Image: img})
		}
		roots := make([]store.RootUpdate, 0, len(req.roots))
		for _, r := range req.roots {
			roots = append(roots, store.RootUpdate{Slot: r.slot, ID: r.id})
		}
		if err := tp.Prepare(req.token, images, roots, req.frees); err != nil {
			return nil, false, err
		}
	}
	s.prepared[req.token] = e
	s.crossPrepares.Add(1)
	return nil, false, nil
}

// decide resolves a prepared transaction: body is token (8 bytes) and
// a commit flag (1 byte). Commit applies the staged write set behind a
// durable decide barrier and answers with the new commit sequence, as
// a plain commit would; abort discards it behind a durable tombstone.
func (s *Server) decide(body []byte) (resp []byte, conflict bool, rerr error) {
	if len(body) != 9 {
		return nil, false, badReq("remote: bad Decide request")
	}
	tok := binary.LittleEndian.Uint64(body)
	commit := body[8] != 0
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.decideLocked(tok, commit)
}

// decideLocked is decide's body, shared with the in-doubt resolver.
// Callers hold s.mu.
func (s *Server) decideLocked(tok uint64, commit bool) (resp []byte, conflict bool, rerr error) {
	if !commit {
		// Abort is recorded durably even for a token never prepared
		// here: a coordinator presumes abort for transactions whose
		// client vanished before staging anything, and an in-doubt
		// participant polling later needs the definite answer.
		if s.tokenSeenLocked(tok) {
			return nil, false, fmt.Errorf("remote: decide abort for already-committed transaction %#x", tok)
		}
		if tp, ok := s.st.(twoPhaseStore); ok {
			if err := tp.DecidePrepared(tok, false); err != nil {
				return nil, false, err
			}
		}
		if _, ok := s.prepared[tok]; ok {
			delete(s.prepared, tok)
			s.aborts.Add(1)
		}
		s.recordAbortLocked(tok)
		s.crossAborts.Add(1)
		return nil, false, nil
	}
	if s.tokenSeenLocked(tok) {
		// Resent decide after a lost acknowledgement.
		s.dupCommits.Add(1)
		return binary.LittleEndian.AppendUint64(nil, s.commitSeq.Load()), false, nil
	}
	if _, ok := s.abortedT[tok]; ok {
		return nil, true, nil // decided abort already; cannot commit
	}
	e := s.prepared[tok]
	if e == nil {
		return nil, false, fmt.Errorf("remote: decide commit for unknown transaction %#x", tok)
	}
	if tp, ok := s.st.(twoPhaseStore); ok {
		if err := tp.DecidePrepared(tok, true); err != nil {
			return nil, false, err
		}
	} else {
		// Memory-only prepare (the store offers no 2PC capability):
		// apply the retained request like a plain commit.
		if e.req == nil {
			return nil, false, fmt.Errorf("remote: no staged write set for transaction %#x", tok)
		}
		if err := s.applyLocked(e.req); err != nil {
			if ab, ok := s.st.(interface{ Abort() error }); ok {
				ab.Abort()
			}
			return nil, false, err
		}
		var cerr error
		if tc, ok := s.st.(tokenCommitter); ok {
			cerr = tc.CommitTokens([]uint64{tok})
		} else {
			cerr = s.st.Commit()
		}
		if cerr != nil {
			return nil, false, cerr
		}
	}
	s.versionMu.Lock()
	for _, id := range e.writeIDs {
		s.versions[id]++
	}
	for _, id := range e.freeIDs {
		s.versions[id]++
	}
	if e.rootsTouched {
		s.versions[rootsVersionKey]++
	}
	s.versionMu.Unlock()
	delete(s.prepared, tok)
	s.recordTokenLocked(tok)
	s.commits.Add(1)
	s.commitSeq.Add(1)
	s.crossCommits.Add(1)
	s.gcFlushes.Add(1)
	return binary.LittleEndian.AppendUint64(nil, s.commitSeq.Load()), false, nil
}

// routeTableResp serves the cluster routing table: epoch, shard count,
// then each shard's address in shard-ID order.
func (s *Server) routeTableResp() ([]byte, error) {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	resp := binary.LittleEndian.AppendUint64(nil, s.routeEpoch)
	resp = binary.LittleEndian.AppendUint32(resp, uint32(len(s.routeAddrs)))
	for _, a := range s.routeAddrs {
		resp = binary.LittleEndian.AppendUint16(resp, uint16(len(a)))
		resp = append(resp, a...)
	}
	return resp, nil
}

// resolveLoop periodically resolves prepared transactions stuck in
// doubt — the survivors of a client that died mid-2PC or a shard
// restart. Started by Serve; exits on Close.
func (s *Server) resolveLoop() {
	defer s.wg.Done()
	every := s.resolveEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	t := time.NewTicker(every)
	defer t.Stop()
	for {
		select {
		case <-s.closed:
			return
		case <-t.C:
			s.resolveInDoubt()
		}
	}
}

// resolveInDoubt decides every prepared entry older than the prepare
// age. A transaction this shard coordinated (the token's top byte
// names us) whose decision never arrived is presumed aborted — the
// tombstone is durable, so every participant polling later learns the
// same answer. A transaction coordinated elsewhere is never guessed
// at: the resolver polls the coordinator via opCommitCheck and applies
// only a definite answer, waiting out unknowns (the coordinator's own
// timeout eventually converts those to durable aborts).
func (s *Server) resolveInDoubt() {
	age := s.prepareAge
	if age <= 0 {
		age = 5 * time.Second
	}
	s.mu.Lock()
	var stale []uint64
	for tok, e := range s.prepared {
		if time.Since(e.at) >= age {
			stale = append(stale, tok)
		}
	}
	s.mu.Unlock()
	for _, tok := range stale {
		coord := int(tok >> shardShift)
		if coord == s.shardID {
			s.mu.Lock()
			if _, still := s.prepared[tok]; still {
				if _, _, err := s.decideLocked(tok, false); err != nil {
					s.logf("remote: resolver: presumed abort of %#x failed: %v", tok, err)
				} else {
					s.resolvedInDoubt.Add(1)
				}
			}
			s.mu.Unlock()
			continue
		}
		addr := s.coordAddr(coord)
		if addr == "" {
			continue
		}
		state, err := s.checkCoordinator(addr, tok)
		if err != nil {
			s.logf("remote: resolver: coordinator %s unreachable for %#x: %v", addr, tok, err)
			continue
		}
		if state != checkCommitted && state != checkAborted {
			continue // still in doubt; keep polling
		}
		s.mu.Lock()
		if _, still := s.prepared[tok]; still {
			if _, _, err := s.decideLocked(tok, state == checkCommitted); err != nil {
				s.logf("remote: resolver: applying decision for %#x failed: %v", tok, err)
			} else {
				s.resolvedInDoubt.Add(1)
			}
		}
		s.mu.Unlock()
	}
}

// coordAddr resolves a shard ID to its address via the routing table.
func (s *Server) coordAddr(shard int) string {
	s.routeMu.Lock()
	defer s.routeMu.Unlock()
	if shard < 0 || shard >= len(s.routeAddrs) {
		return ""
	}
	return s.routeAddrs[shard]
}

// checkCoordinator asks a peer shard what became of a commit token. A
// short-lived client with a tight budget: the resolver runs again next
// tick, so there is no point retrying hard here.
func (s *Server) checkCoordinator(addr string, tok uint64) (byte, error) {
	c, err := Dial(addr, ClientOptions{
		PoolPages:      16,
		Conns:          1,
		RetryLimit:     -1,
		RequestTimeout: 2 * time.Second,
	})
	if err != nil {
		return checkUnknown, err
	}
	defer c.Close()
	return c.CommitCheck(tok)
}

func (s *Server) statsResp() ([]byte, error) {
	resp := make([]byte, 24)
	binary.LittleEndian.PutUint64(resp[0:], s.commits.Load())
	binary.LittleEndian.PutUint64(resp[8:], s.aborts.Load())
	binary.LittleEndian.PutUint64(resp[16:], s.fetches.Load())
	return resp, nil
}

// ListenAndServeStore is a convenience for cmd/hyperserver: open the
// store at path, serve on addr, and block until the listener fails.
func ListenAndServeStore(path, addr string, opts *store.Options, idleTimeout time.Duration, maxConns, maxInflight int) error {
	st, err := store.Open(path, opts)
	if err != nil {
		return err
	}
	defer st.Close()
	srv := NewServer(st)
	srv.SetLogf(log.Printf)
	srv.SetIdleTimeout(idleTimeout)
	srv.SetMaxConns(maxConns)
	srv.SetMaxInflight(maxInflight)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("hyperserver: serving %s on %s", path, ln.Addr())
	srv.Serve(ln)
	srv.wg.Wait()
	return nil
}
