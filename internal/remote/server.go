package remote

import (
	"encoding/binary"
	"errors"
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"hypermodel/internal/storage/page"
	"hypermodel/internal/storage/store"
)

// Server exposes a local page store to workstation clients over TCP.
// All requests are serialized through one mutex: the server machine is
// the coordination point, as in the centralized-control architectures
// the paper discusses under R6.
//
// The server is hardened against misbehaving clients and networks: a
// malformed frame gets a statusBadRequest answer (and the connection
// survives), a panic while executing one request is confined to that
// request, idle connections are reaped by a read deadline, and a
// max-connection limit refuses excess clients cleanly instead of
// accepting work it cannot serve.
type Server struct {
	mu       sync.Mutex
	st       store.Space
	versions map[page.ID]uint64 // bumped on every committed write
	ln       net.Listener
	wg       sync.WaitGroup
	connMu   sync.Mutex
	conns    map[net.Conn]struct{}
	closed   chan struct{}
	commits  uint64
	aborts   uint64
	fetches  uint64

	// Commit-token dedup ring: the tokens of the most recent applied
	// commits, so a commit resent after a lost acknowledgement is
	// recognized and answered OK without being applied twice.
	tokens     map[uint64]struct{}
	tokenLog   []uint64 // insertion order; oldest evicted past tokenRingSize
	dupCommits uint64

	idleTimeout time.Duration
	maxConns    int
	refused     uint64

	logf func(format string, args ...any)
}

// tokenRingSize bounds the commit-token dedup memory. A client
// resolves commit uncertainty immediately after reconnecting, so only
// the last few commits ever need to be recognized; 4096 leaves orders
// of magnitude of slack.
const tokenRingSize = 4096

// rootsVersionKey is the pseudo-page whose version covers the root
// directory, so root changes participate in optimistic validation.
const rootsVersionKey = page.ID(0)

// NewServer wraps an open page space. The caller keeps ownership and
// closes it after the server stops. Taking the Space interface (rather
// than *store.Store) lets tests interpose fault injection between the
// server and its storage.
func NewServer(st store.Space) *Server {
	return &Server{
		st:       st,
		versions: make(map[page.ID]uint64),
		conns:    make(map[net.Conn]struct{}),
		closed:   make(chan struct{}),
		tokens:   make(map[uint64]struct{}),
		logf:     func(string, ...any) {},
	}
}

// SetLogf installs a logger for connection-level errors (the default
// discards them; cmd/hyperserver passes log.Printf).
func (s *Server) SetLogf(f func(format string, args ...any)) {
	if f == nil {
		f = func(string, ...any) {}
	}
	s.logf = f
}

// SetIdleTimeout bounds how long a connection may sit idle between
// requests before the server reaps it (zero, the default, means
// forever). Must be set before Serve.
func (s *Server) SetIdleTimeout(d time.Duration) { s.idleTimeout = d }

// SetMaxConns caps concurrent client connections; excess connections
// are refused with a "server busy" error frame and closed (zero, the
// default, means unlimited). Must be set before Serve.
func (s *Server) SetMaxConns(n int) { s.maxConns = n }

// Serve starts accepting connections on ln and returns immediately.
func (s *Server) Serve(ln net.Listener) {
	s.ln = ln
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				select {
				case <-s.closed:
					return
				default:
					s.logf("remote: accept: %v", err)
					return
				}
			}
			if !s.admit(conn) {
				continue
			}
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				s.handle(conn)
			}()
		}
	}()
}

// admit registers the connection, or refuses it cleanly when the
// server is at its connection limit.
func (s *Server) admit(conn net.Conn) bool {
	s.connMu.Lock()
	if s.maxConns > 0 && len(s.conns) >= s.maxConns {
		s.refused++
		s.connMu.Unlock()
		s.logf("remote: refusing %s: connection limit (%d) reached", conn.RemoteAddr(), s.maxConns)
		// A well-formed refusal frame, so the client's first request
		// fails with a ServerError instead of a silent close.
		conn.SetWriteDeadline(time.Now().Add(time.Second))
		writeFrame(conn, append([]byte{statusError}, "server busy"...))
		conn.Close()
		return false
	}
	s.conns[conn] = struct{}{}
	s.connMu.Unlock()
	return true
}

// ListenAndServe listens on addr and serves until Close.
func (s *Server) ListenAndServe(addr string) (net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s.Serve(ln)
	return ln.Addr(), nil
}

// Close stops accepting connections, disconnects active clients and
// waits for handlers to finish.
func (s *Server) Close() error {
	close(s.closed)
	var err error
	if s.ln != nil {
		err = s.ln.Close()
	}
	s.connMu.Lock()
	for conn := range s.conns {
		conn.Close()
	}
	s.connMu.Unlock()
	s.wg.Wait()
	return err
}

// Stats reports commit/abort/fetch counters.
func (s *Server) Stats() (commits, aborts, fetches uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.commits, s.aborts, s.fetches
}

// FaultStats reports the fault-tolerance counters: duplicate commits
// absorbed by the token ring, and connections refused at the limit.
func (s *Server) FaultStats() (dupCommits, refused uint64) {
	s.mu.Lock()
	dup := s.dupCommits
	s.mu.Unlock()
	s.connMu.Lock()
	ref := s.refused
	s.connMu.Unlock()
	return dup, ref
}

// badRequestError marks a failure the client caused (malformed frame,
// unknown opcode) as opposed to a server-side fault. The distinction
// drives both the response status and the logging: a bad request is
// the client's bug, a server fault is ours.
type badRequestError struct{ msg string }

func (e *badRequestError) Error() string { return e.msg }

func badReq(format string, args ...any) error {
	return &badRequestError{msg: fmt.Sprintf(format, args...)}
}

func (s *Server) handle(conn net.Conn) {
	defer func() {
		s.connMu.Lock()
		delete(s.conns, conn)
		s.connMu.Unlock()
		conn.Close()
	}()
	for {
		if s.idleTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.idleTimeout))
		}
		req, err := readFrame(conn)
		if err != nil {
			return // client went away (or idled out)
		}
		resp, conflict, rerr := s.dispatch(req)
		switch {
		case conflict:
			if err := writeFrame(conn, []byte{statusConflict}); err != nil {
				return
			}
		case rerr != nil:
			if !s.respondErr(conn, rerr) {
				return
			}
		default:
			if err := writeFrame(conn, append([]byte{statusOK}, resp...)); err != nil {
				return
			}
		}
	}
}

// dispatch executes one request frame. A panic while executing it is
// confined to the request — the handler recovers, answers with a
// server error, and the connection (and server) live on.
func (s *Server) dispatch(req []byte) (resp []byte, conflict bool, rerr error) {
	defer func() {
		if r := recover(); r != nil {
			resp, conflict = nil, false
			rerr = fmt.Errorf("remote: panic while serving request: %v", r)
		}
	}()
	if len(req) == 0 {
		return nil, false, badReq("remote: empty request")
	}
	switch req[0] {
	case opGetPage:
		resp, rerr = s.getPage(req[1:])
	case opGetPages:
		resp, rerr = s.getPages(req[1:])
	case opAlloc:
		resp, rerr = s.alloc(req[1:])
	case opRoots:
		resp, rerr = s.roots()
	case opCommit:
		resp, conflict, rerr = s.commit(req[1:])
	case opCommitCheck:
		resp, rerr = s.commitCheck(req[1:])
	case opStats:
		resp, rerr = s.statsResp()
	case opPing:
		resp = nil
	default:
		rerr = badReq("remote: unknown opcode %d", req[0])
	}
	return resp, conflict, rerr
}

// respondErr answers a failed request, distinguishing client-caused
// errors (statusBadRequest, the client's bug) from server faults
// (statusError, ours — logged with the peer's address so an operator
// can correlate).
func (s *Server) respondErr(conn net.Conn, err error) bool {
	var br *badRequestError
	if errors.As(err, &br) {
		s.logf("remote: bad request from %s: %v", conn.RemoteAddr(), err)
		return writeFrame(conn, append([]byte{statusBadRequest}, err.Error()...)) == nil
	}
	s.logf("remote: server fault serving %s: %v", conn.RemoteAddr(), err)
	return writeFrame(conn, append([]byte{statusError}, err.Error()...)) == nil
}

func (s *Server) getPage(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, badReq("remote: bad GetPage request")
	}
	id := page.ID(binary.LittleEndian.Uint64(body))
	s.mu.Lock()
	defer s.mu.Unlock()
	h, err := s.st.Get(id)
	if err != nil {
		return nil, err
	}
	defer h.Release()
	s.fetches++
	resp := make([]byte, 8+page.Size)
	binary.LittleEndian.PutUint64(resp, s.versions[id])
	copy(resp[8:], h.Page().Bytes())
	return resp, nil
}

func (s *Server) getPages(body []byte) ([]byte, error) {
	if len(body) < 4 {
		return nil, badReq("remote: bad GetPages request")
	}
	n := int(binary.LittleEndian.Uint32(body))
	if n > maxBatchPages || len(body) != 4+8*n {
		return nil, badReq("remote: bad GetPages request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, n*(8+page.Size))
	off := 0
	for i := 0; i < n; i++ {
		id := page.ID(binary.LittleEndian.Uint64(body[4+8*i:]))
		h, err := s.st.Get(id)
		if err != nil {
			return nil, fmt.Errorf("remote: GetPages item %d (page %d): %w", i, id, err)
		}
		s.fetches++
		binary.LittleEndian.PutUint64(resp[off:], s.versions[id])
		copy(resp[off+8:], h.Page().Bytes())
		h.Release()
		off += 8 + page.Size
	}
	return resp, nil
}

func (s *Server) alloc(body []byte) ([]byte, error) {
	if len(body) != 1 {
		return nil, badReq("remote: bad Alloc request")
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	id, h, err := s.st.Alloc(page.Type(body[0]))
	if err != nil {
		return nil, err
	}
	h.Release()
	// Reallocated pages keep their version history, so the client must
	// learn the current version, not assume zero.
	resp := binary.LittleEndian.AppendUint64(nil, uint64(id))
	return binary.LittleEndian.AppendUint64(resp, s.versions[id]), nil
}

func (s *Server) roots() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, 8+8*store.NumRoots)
	binary.LittleEndian.PutUint64(resp, s.versions[rootsVersionKey])
	for i := 0; i < store.NumRoots; i++ {
		binary.LittleEndian.PutUint64(resp[8+8*i:], uint64(s.st.Root(i)))
	}
	return resp, nil
}

// tokenSeenLocked reports whether a commit token is in the applied
// ring. Callers hold s.mu.
func (s *Server) tokenSeenLocked(tok uint64) bool {
	_, ok := s.tokens[tok]
	return ok
}

// recordTokenLocked remembers an applied commit token, evicting the
// oldest past the ring size. Callers hold s.mu.
func (s *Server) recordTokenLocked(tok uint64) {
	if len(s.tokenLog) >= tokenRingSize {
		delete(s.tokens, s.tokenLog[0])
		s.tokenLog = s.tokenLog[1:]
	}
	s.tokens[tok] = struct{}{}
	s.tokenLog = append(s.tokenLog, tok)
}

func (s *Server) commit(body []byte) (resp []byte, conflict bool, err error) {
	req, err := decodeCommit(body)
	if err != nil {
		return nil, false, badReq("%v", err)
	}
	s.mu.Lock()
	defer s.mu.Unlock()

	// A token we have already applied means the client lost our
	// acknowledgement and resent: answer OK again, apply nothing.
	if req.token != 0 && s.tokenSeenLocked(req.token) {
		s.dupCommits++
		return nil, false, nil
	}

	// Optimistic validation: every page (and the root directory) the
	// client read must still be at the version it saw.
	for _, r := range req.reads {
		if s.versions[r.id] != r.version {
			s.aborts++
			return nil, true, nil
		}
	}

	for _, w := range req.writes {
		h, err := s.st.Get(w.id)
		if err != nil {
			return nil, false, fmt.Errorf("remote: commit write page %d: %w", w.id, err)
		}
		copy(h.Page().Bytes(), w.image)
		h.MarkDirty()
		h.Release()
		s.versions[w.id]++
	}
	for _, r := range req.roots {
		s.st.SetRoot(r.slot, r.id)
	}
	if len(req.roots) > 0 {
		s.versions[rootsVersionKey]++
	}
	for _, id := range req.frees {
		if err := s.st.Free(id); err != nil {
			return nil, false, fmt.Errorf("remote: commit free page %d: %w", id, err)
		}
		s.versions[id]++
	}
	if err := s.st.Commit(); err != nil {
		return nil, false, err
	}
	if req.token != 0 {
		s.recordTokenLocked(req.token)
	}
	s.commits++
	return nil, false, nil
}

// commitCheck answers whether a commit token has been applied — the
// resolution step for a client whose connection died mid-commit.
func (s *Server) commitCheck(body []byte) ([]byte, error) {
	if len(body) != 8 {
		return nil, badReq("remote: bad CommitCheck request")
	}
	tok := binary.LittleEndian.Uint64(body)
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.tokenSeenLocked(tok) {
		return []byte{1}, nil
	}
	return []byte{0}, nil
}

func (s *Server) statsResp() ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp := make([]byte, 24)
	binary.LittleEndian.PutUint64(resp[0:], s.commits)
	binary.LittleEndian.PutUint64(resp[8:], s.aborts)
	binary.LittleEndian.PutUint64(resp[16:], s.fetches)
	return resp, nil
}

// ListenAndServeStore is a convenience for cmd/hyperserver: open the
// store at path, serve on addr, and block until the listener fails.
func ListenAndServeStore(path, addr string, opts *store.Options, idleTimeout time.Duration, maxConns int) error {
	st, err := store.Open(path, opts)
	if err != nil {
		return err
	}
	defer st.Close()
	srv := NewServer(st)
	srv.SetLogf(log.Printf)
	srv.SetIdleTimeout(idleTimeout)
	srv.SetMaxConns(maxConns)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("hyperserver: serving %s on %s", path, ln.Addr())
	srv.Serve(ln)
	srv.wg.Wait()
	return nil
}
