package hypermodel_test

import (
	"errors"
	"fmt"
	"math/rand"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"hypermodel/internal/backend/oodb"
	"hypermodel/internal/hyper"
	"hypermodel/internal/storage/store"
)

// TestConcurrentReadersUnderWriter is the single-writer/multi-reader
// stress test: G reader goroutines run a mixed O1–O15 read workload
// (O12 is an update and sits out) against one shared database while
// the writer loops SetHundred/Commit, and every concurrent answer
// must match the single-threaded ground truth.
//
// The workload is constructed to be writer-invariant so ground truth
// stays valid across commits: the writer toggles one leaf's hundred
// attribute between two values, O1/O2 never pick that leaf, O3's
// window excludes both values, and the O10/O11/O13 closures start in
// a different root subtree. Everything else (O4–O9, O14, O15) reads
// ids, structure, or attributes the writer never touches. Each op
// runs under ReadView.Atomically, so a commit installing mid-op
// discards and re-runs it; the writer paces its commits a few
// milliseconds apart so multi-page ops always find a commit-free
// window to complete in.
func TestConcurrentReadersUnderWriter(t *testing.T) {
	const (
		hvalA = int32(3) // the two values the writer toggles between
		hvalB = int32(7)
		o3x   = int32(50) // O3 window [50,59]: excludes hvalA/hvalB

		goroutines = 6
		rounds     = 12
	)

	st, err := store.Open(filepath.Join(t.TempDir(), "stress.db"), nil)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	wdb, err := oodb.New(st, oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	lay, _, err := hyper.Generate(wdb, hyper.GenConfig{LeafLevel: 3, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if err := wdb.Commit(); err != nil {
		t.Fatal(err)
	}

	// Pin the writer's target to a known value before ground truth so
	// both toggle states are excluded from every hundred-reading op.
	target := lay.LastID()
	if err := wdb.SetHundred(target, hvalA); err != nil {
		t.Fatal(err)
	}
	if err := wdb.Commit(); err != nil {
		t.Fatal(err)
	}

	// Closure starts for O10/O11/O13: the first root subtree, which
	// cannot contain the last leaf.
	kids, err := hyper.GroupLookup1N(wdb, lay.FirstID())
	if err != nil || len(kids) == 0 {
		t.Fatalf("root children: %v (%v)", kids, err)
	}
	c1 := kids[0]
	sub, err := hyper.Closure1N(wdb, c1)
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range sub {
		if id == target {
			t.Fatalf("writer target %d inside the O10/O11 closure", target)
		}
	}

	type stressOp struct {
		name string
		run  func(b hyper.Backend) (string, error)
	}
	var ops []stressOp
	add := func(name string, run func(b hyper.Backend) (string, error)) {
		ops = append(ops, stressOp{name, run})
	}
	rng := rand.New(rand.NewSource(7))
	pick := func() hyper.NodeID {
		for {
			if id := lay.RandomNode(rng); id != target {
				return id
			}
		}
	}
	for i := 0; i < 3; i++ {
		id := pick()
		add(fmt.Sprintf("O1(%d)", id), func(b hyper.Backend) (string, error) {
			h, err := hyper.NameLookup(b, id)
			return fmt.Sprint(h), err
		})
	}
	if oid, err := wdb.OIDOf(pick()); err == nil {
		add(fmt.Sprintf("O2(%d)", oid), func(b hyper.Backend) (string, error) {
			h, err := hyper.NameOIDLookup(b, oid)
			return fmt.Sprint(h), err
		})
	} else if !errors.Is(err, hyper.ErrNoOIDs) {
		t.Fatal(err)
	}
	add("O3", func(b hyper.Backend) (string, error) {
		ids, err := hyper.RangeLookupHundred(b, o3x)
		return fmt.Sprint(ids), err
	})
	o4y := int32(rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
	add("O4", func(b hyper.Backend) (string, error) {
		ids, err := hyper.RangeLookupMillion(b, o4y)
		return fmt.Sprint(ids), err
	})
	for i := 0; i < 2; i++ {
		id := lay.RandomInternal(rng)
		add(fmt.Sprintf("O5A(%d)", id), func(b hyper.Backend) (string, error) {
			ids, err := hyper.GroupLookup1N(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O5B(%d)", id), func(b hyper.Backend) (string, error) {
			ids, err := hyper.GroupLookupMN(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O6(%d)", id), func(b hyper.Backend) (string, error) {
			refs, err := hyper.GroupLookupMNAtt(b, id)
			return fmt.Sprint(refs), err
		})
	}
	for i := 0; i < 2; i++ {
		id := lay.RandomNonRoot(rng)
		add(fmt.Sprintf("O7A(%d)", id), func(b hyper.Backend) (string, error) {
			ids, err := hyper.RefLookup1N(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O7B(%d)", id), func(b hyper.Backend) (string, error) {
			ids, err := hyper.RefLookupMN(b, id)
			return fmt.Sprint(ids), err
		})
		add(fmt.Sprintf("O8(%d)", id), func(b hyper.Backend) (string, error) {
			refs, err := hyper.RefLookupMNAtt(b, id)
			return fmt.Sprint(refs), err
		})
	}
	add("O9", func(b hyper.Backend) (string, error) {
		n, err := hyper.SeqScan(b, lay.FirstID(), lay.LastID())
		return fmt.Sprint(n), err
	})
	add(fmt.Sprintf("O10(%d)", c1), func(b hyper.Backend) (string, error) {
		ids, err := hyper.Closure1N(b, c1)
		return fmt.Sprint(ids), err
	})
	add(fmt.Sprintf("O11(%d)", c1), func(b hyper.Backend) (string, error) {
		sum, visited, err := hyper.Closure1NAttSum(b, c1)
		return fmt.Sprintf("%d/%d", sum, visited), err
	})
	o13x := int32(rng.Intn(hyper.MillionRange - hyper.MillionWindow + 1))
	add(fmt.Sprintf("O13(%d)", c1), func(b hyper.Backend) (string, error) {
		ids, err := hyper.Closure1NPred(b, c1, o13x)
		return fmt.Sprint(ids), err
	})
	mnStart := lay.RandomClosureStart(rng)
	add(fmt.Sprintf("O14(%d)", mnStart), func(b hyper.Backend) (string, error) {
		ids, err := hyper.ClosureMN(b, mnStart)
		return fmt.Sprint(ids), err
	})
	add(fmt.Sprintf("O15(%d)", mnStart), func(b hyper.Backend) (string, error) {
		ids, err := hyper.ClosureMNAtt(b, mnStart, 25)
		return fmt.Sprint(ids), err
	})

	// Single-threaded ground truth through the same reader code path.
	gt, err := oodb.New(st.ReadView(), oodb.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	want := make([]string, len(ops))
	for i, o := range ops {
		got, err := o.run(gt)
		if err != nil {
			t.Fatalf("serial %s: %v", o.name, err)
		}
		want[i] = got
	}

	// Writer: toggle the target's hundred and commit, paced so that
	// readers' multi-page operations can land in commit-free windows.
	stop := make(chan struct{})
	writerErr := make(chan error, 1)
	var commits int
	var wwg sync.WaitGroup
	wwg.Add(1)
	go func() {
		defer wwg.Done()
		v := hvalB
		for {
			select {
			case <-stop:
				return
			default:
			}
			if err := wdb.SetHundred(target, v); err != nil {
				writerErr <- err
				return
			}
			if err := wdb.Commit(); err != nil {
				writerErr <- err
				return
			}
			commits++
			v = hvalA + hvalB - v
			time.Sleep(time.Millisecond)
		}
	}()

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			view := st.ReadView()
			rdb, err := oodb.New(view, oodb.DefaultOptions())
			if err != nil {
				t.Errorf("goroutine %d: %v", g, err)
				return
			}
			for r := 0; r < rounds; r++ {
				for i := range ops {
					o := ops[(i+g)%len(ops)]
					var got string
					err := view.Atomically(func() error {
						s, err := o.run(rdb)
						if err != nil {
							return err
						}
						got = s
						return nil
					})
					if err != nil {
						t.Errorf("goroutine %d: %s: %v", g, o.name, err)
						return
					}
					if got != want[(i+g)%len(ops)] {
						t.Errorf("goroutine %d: %s = %s, want %s", g, o.name, got, want[(i+g)%len(ops)])
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	wwg.Wait()
	select {
	case err := <-writerErr:
		t.Fatalf("writer: %v", err)
	default:
	}
	if commits == 0 {
		t.Fatal("writer never committed: the readers were not stressed")
	}
	t.Logf("%d reader goroutines × %d rounds × %d ops against %d commits", goroutines, rounds, len(ops), commits)
}
