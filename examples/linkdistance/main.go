// Linkdistance: the M-N attribute relationship as a directed weighted
// graph (Figure 4). Every node references one other node with an
// offsetTo weight; closureMNAttLinkSum (O18) walks the reference chain
// accumulating distance. The example surveys chain shapes across many
// start nodes and finds the farthest node reachable within the
// benchmark's depth bound.
//
//	go run ./examples/linkdistance
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"hypermodel"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-linkdistance-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hypermodel.OpenOODB(filepath.Join(dir, "links.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	layout, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("weighted reference graph over %d nodes (out-degree 1, weights 0–9)\n\n", layout.Total())

	const depth = 25
	rng := rand.New(rand.NewSource(11))

	// Survey: chain length and total distance from 200 random starts.
	// Chains end early when they bite their own tail (cycle) — with
	// out-degree 1 the expected tail is short relative to the graph.
	var (
		lengths  [depth + 1]int
		maxDist  int64
		maxStart hypermodel.NodeID
		maxEnd   hypermodel.NodeID
		totalLen int
	)
	const starts = 200
	for i := 0; i < starts; i++ {
		start := layout.RandomNode(rng)
		pairs, err := hypermodel.ClosureMNAttLinkSum(db, start, depth)
		if err != nil {
			log.Fatal(err)
		}
		lengths[len(pairs)]++
		totalLen += len(pairs)
		if len(pairs) > 0 {
			last := pairs[len(pairs)-1]
			if last.Dist > maxDist {
				maxDist, maxStart, maxEnd = last.Dist, start, last.ID
			}
		}
	}
	fmt.Printf("chains from %d random starts (depth bound %d):\n", starts, depth)
	fmt.Printf("  average chain length: %.1f\n", float64(totalLen)/starts)
	short, full := 0, 0
	for l, c := range lengths {
		if l < depth {
			short += c
		} else {
			full += c
		}
	}
	fmt.Printf("  cycled before the bound: %d, ran the full %d hops: %d\n", short, depth, full)
	fmt.Printf("  farthest walk: %d -> %d, total offsetTo distance %d\n\n", maxStart, maxEnd, maxDist)

	// The same walk step by step, as an application would render it.
	pairs, err := hypermodel.ClosureMNAttLinkSum(db, maxStart, depth)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("walk from node %d:\n", maxStart)
	shown := pairs
	if len(shown) > 8 {
		shown = shown[:8]
	}
	prev := int64(0)
	for hop, p := range shown {
		fmt.Printf("  hop %2d: node %-6d (+%d, total %d)\n", hop+1, p.ID, p.Dist-prev, p.Dist)
		prev = p.Dist
	}
	if len(pairs) > len(shown) {
		fmt.Printf("  ... %d more hops\n", len(pairs)-len(shown))
	}

	// Cross-check against O15 (same traversal without distances).
	ids, err := hypermodel.ClosureMNAtt(db, maxStart, depth)
	if err != nil {
		log.Fatal(err)
	}
	if len(ids) != len(pairs) {
		log.Fatalf("O15 and O18 disagree: %d vs %d nodes", len(ids), len(pairs))
	}
	fmt.Printf("\nO15 closureMNAtt agrees: %d nodes reachable\n", len(ids))
}
