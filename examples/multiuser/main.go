// Multiuser: the paper's R9 cooperation scenario on the
// workstation/server architecture (R6). A page server owns the
// database; two users run their sessions on parallel goroutines from
// "workstations" (separate clients with private caches), edit
// different nodes of the same structure in private workspaces,
// publish, and then deliberately collide on one node to show
// optimistic validation (R8) aborting the stale publish and retrying.
// The server end of this is the single-writer/multi-reader engine:
// page fetches from concurrent sessions proceed in parallel, commits
// serialize through the store's writer lock.
//
//	go run ./examples/multiuser
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sync"

	"hypermodel"
	"hypermodel/internal/hyper"
	"hypermodel/internal/txn"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-multiuser-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The server side: one shared database.
	addr, stop, err := hypermodel.StartServer(filepath.Join(dir, "shared.db"), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("page server on %s\n", addr)

	// Bootstrap the test structure through one connection.
	boot, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	layout, _, err := hypermodel.Generate(boot, hypermodel.GenConfig{LeafLevel: 3, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		log.Fatal(err)
	}
	boot.Close()
	fmt.Printf("shared structure: %d nodes\n\n", layout.Total())

	// Cooperation: alice and bob edit different text nodes of the same
	// structure, each session on its own goroutine. Validation is
	// page-granular, so the nodes must not share a data page: adjacent
	// leaves are clustered together and would falsely conflict — the
	// very difficulty the paper reports in its §7 multi-user
	// discussion. Distant subtrees live on distant pages.
	leafFirst, leafLast := hyper.LevelIDs(layout.LeafLevel)
	users := []struct {
		name string
		node hypermodel.NodeID
	}{
		{"alice", leafFirst},
		{"bob", leafLast - 1}, // the very last leaf is the FormNode
	}

	var (
		wg        sync.WaitGroup
		edited    = make(chan string, len(users))
		publishGo = make(chan struct{})
		errs      = make(chan error, 2*len(users))
	)
	for _, u := range users {
		wg.Add(1)
		go func(name string, node hypermodel.NodeID) {
			defer wg.Done()
			db, err := hypermodel.DialServer(addr)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			defer db.Close()
			ws := txn.NewWorkspace(db, name)
			if err := hypermodel.TextNodeEdit(ws.Backend(), node, true); err != nil {
				errs <- fmt.Errorf("%s: edit: %w", name, err)
				return
			}
			edited <- name
			<-publishGo // hold the edit private until the reader has looked
			if err := ws.Publish(); err != nil {
				errs <- fmt.Errorf("%s: publish: %w", name, err)
			}
		}(u.name, u.node)
	}
	for range users {
		fmt.Printf("%s edited a node in a private workspace\n", <-edited)
	}

	// Private until published: a fresh reader still sees the originals.
	reader, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	textBefore, err := reader.Text(users[0].node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before publish, the shared text still reads %q...\n", textBefore[:12])

	close(publishGo)
	wg.Wait()
	select {
	case err := <-errs:
		log.Fatal(err)
	default:
	}
	fmt.Println("alice and bob published disjoint edits in parallel — no conflict (R9)")

	if err := reader.DropCaches(); err != nil {
		log.Fatal(err)
	}
	textAfter, err := reader.Text(users[0].node)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after publish, the shared text reads  %q...\n\n", textAfter[:12])

	// Contention: both sessions bump the same attribute of the same
	// node concurrently. Each goroutine primes its cache with a read,
	// waits at the barrier so the reads genuinely overlap, then
	// increments under the idiomatic retry loop. Whoever publishes
	// second is working from a stale page, fails optimistic validation
	// (R8), and retries on fresh state — both increments land.
	target := hypermodel.NodeID(5)
	before, err := reader.Hundred(target)
	if err != nil {
		log.Fatal(err)
	}

	var (
		barrier   sync.WaitGroup
		conflicts = make(chan int, len(users))
	)
	barrier.Add(len(users))
	for _, u := range users {
		wg.Add(1)
		go func(name string) {
			defer wg.Done()
			db, err := hypermodel.DialServer(addr)
			if err != nil {
				errs <- fmt.Errorf("%s: %w", name, err)
				return
			}
			defer db.Close()
			if _, err := db.Hundred(target); err != nil {
				errs <- fmt.Errorf("%s: prime: %w", name, err)
				barrier.Done()
				return
			}
			barrier.Done()
			barrier.Wait()
			attempts := 0
			err = txn.Run(db, func() error {
				attempts++
				h, err := db.Hundred(target)
				if err != nil {
					return err
				}
				return db.SetHundred(target, (h+1)%100)
			})
			if err != nil {
				errs <- fmt.Errorf("%s: increment: %w", name, err)
				return
			}
			conflicts <- attempts - 1
		}(u.name)
	}
	wg.Wait()
	select {
	case err := <-errs:
		log.Fatal(err)
	default:
	}
	retried := 0
	for range users {
		retried += <-conflicts
	}
	fmt.Printf("concurrent increments of hundred(%d): optimistic validation aborted %d stale publish(es)\n", target, retried)

	if err := reader.DropCaches(); err != nil {
		log.Fatal(err)
	}
	final, err := reader.Hundred(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final hundred(%d) = %d (started at %d): both increments are in\n", target, final, before)
}
