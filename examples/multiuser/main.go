// Multiuser: the paper's R9 cooperation scenario on the
// workstation/server architecture (R6). A page server owns the
// database; two users connect from "workstations" (separate clients
// with private caches), edit different nodes of the same structure in
// private workspaces, publish, and then deliberately collide on one
// node to show optimistic validation (R8) aborting and retrying.
//
//	go run ./examples/multiuser
package main

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"hypermodel"
	"hypermodel/internal/hyper"
	"hypermodel/internal/txn"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-multiuser-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// The server side: one shared database.
	addr, stop, err := hypermodel.StartServer(filepath.Join(dir, "shared.db"), "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	defer stop()
	fmt.Printf("page server on %s\n", addr)

	// Bootstrap the test structure through one connection.
	boot, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	layout, _, err := hypermodel.Generate(boot, hypermodel.GenConfig{LeafLevel: 3, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}
	if err := boot.Commit(); err != nil {
		log.Fatal(err)
	}
	boot.Close()
	fmt.Printf("shared structure: %d nodes\n\n", layout.Total())

	// Two workstations.
	aliceDB, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer aliceDB.Close()
	bobDB, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer bobDB.Close()
	alice := txn.NewWorkspace(aliceDB, "alice")
	bob := txn.NewWorkspace(bobDB, "bob")

	// Cooperation: they edit different text nodes of the same structure.
	// Validation is page-granular, so the nodes must not share a data
	// page: adjacent leaves are clustered together and would falsely
	// conflict — the very difficulty the paper reports in its §7
	// multi-user discussion. Distant subtrees live on distant pages.
	leafFirst, leafLast := hyper.LevelIDs(layout.LeafLevel)
	aliceNode, bobNode := leafFirst, leafLast-1 // the very last leaf is the FormNode
	if err := hypermodel.TextNodeEdit(alice.Backend(), aliceNode, true); err != nil {
		log.Fatal(err)
	}
	if err := hypermodel.TextNodeEdit(bob.Backend(), bobNode, true); err != nil {
		log.Fatal(err)
	}
	// Private until published: a fresh reader sees originals.
	reader, err := hypermodel.DialServer(addr)
	if err != nil {
		log.Fatal(err)
	}
	defer reader.Close()
	textBefore, err := reader.Text(aliceNode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("before publish, the shared text still reads %q...\n", textBefore[:12])

	if err := alice.Publish(); err != nil {
		log.Fatal(err)
	}
	if err := bob.Publish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice and bob published disjoint edits — no conflict (R9)")

	if err := reader.DropCaches(); err != nil {
		log.Fatal(err)
	}
	textAfter, err := reader.Text(aliceNode)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after publish, the shared text reads  %q...\n\n", textAfter[:12])

	// Contention: both bump the same attribute of the same node.
	target := hypermodel.NodeID(5)
	readBoth := func() (int32, int32) {
		a, err := aliceDB.Hundred(target)
		if err != nil {
			log.Fatal(err)
		}
		b, err := bobDB.Hundred(target)
		if err != nil {
			log.Fatal(err)
		}
		return a, b
	}
	a0, b0 := readBoth() // both now hold the page in their caches
	if err := aliceDB.SetHundred(target, (a0+1)%100); err != nil {
		log.Fatal(err)
	}
	if err := bobDB.SetHundred(target, (b0+1)%100); err != nil {
		log.Fatal(err)
	}
	if err := alice.Publish(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("alice published her update of the contended node")
	err = bob.Publish()
	if !errors.Is(err, hypermodel.ErrConflict) {
		log.Fatalf("expected an optimistic conflict, got %v", err)
	}
	fmt.Println("bob's publish failed optimistic validation (R8) — retrying on fresh state")

	// The idiomatic retry loop.
	if err := txn.Run(bobDB, func() error {
		h, err := bobDB.Hundred(target)
		if err != nil {
			return err
		}
		return bobDB.SetHundred(target, (h+1)%100)
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("bob's retry committed — both increments are in")

	if err := reader.DropCaches(); err != nil {
		log.Fatal(err)
	}
	final, err := reader.Hundred(target)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("final hundred(%d) = %d (started at %d)\n", target, final, a0)
}
