// Editor: a simulated interactive editing session — the application
// the HyperModel abstracts ("creation and editing of the data-part of
// hypertext-documents"). A user opens a document, renders its table of
// contents, browses sections, follows hypertext links, edits text and
// a figure, and saves. Each interactive step is timed against the R7
// requirement: an interactive design application needs 100–10,000
// object accesses per second at ≈100 bytes per object.
//
//	go run ./examples/editor
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"time"

	"hypermodel"
	"hypermodel/internal/hyper"
	"hypermodel/internal/version"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-editor-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hypermodel.OpenOODB(filepath.Join(dir, "docs.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()
	layout, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 2026})
	if err != nil {
		log.Fatal(err)
	}
	// The editor starts on a freshly opened database: everything cold.
	if err := db.DropCaches(); err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	fmt.Println("interactive session over a level-4 archive (781 nodes)")
	fmt.Printf("%-44s %10s %12s %10s\n", "step", "objects", "elapsed", "obj/s")

	totalObjects := 0
	var totalTime time.Duration
	step := func(name string, fn func() (objects int)) {
		start := time.Now()
		n := fn()
		elapsed := time.Since(start)
		totalObjects += n
		totalTime += elapsed
		rate := float64(n) / elapsed.Seconds()
		fmt.Printf("%-44s %10d %12s %9.0f\n", name, n, elapsed.Round(time.Microsecond), rate)
	}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}

	// 1. Open a document: fetch its whole structure (cold!).
	docFirst, _ := hyper.LevelIDs(2)
	doc := docFirst + hypermodel.NodeID(rng.Intn(hyper.NodesAtLevel(2)))
	var toc []hypermodel.NodeID
	step("open document (cold closure + ToC)", func() int {
		var err error
		toc, err = hypermodel.Closure1N(db, doc)
		must(err)
		must(hypermodel.SaveNodeList(db, "editor/toc", toc))
		must(db.Commit())
		return len(toc)
	})

	// 2. Render: read every section's attributes and text previews.
	step("render document (warm attribute reads)", func() int {
		for _, id := range toc {
			n, err := db.Node(id)
			must(err)
			if n.Kind == hypermodel.KindText {
				_, err = db.Text(id)
				must(err)
			}
		}
		return len(toc)
	})

	// 3. Follow hypertext links out of the document (5 hops each from
	// three random sections).
	step("follow hypertext links (3×5 hops)", func() int {
		n := 0
		for i := 0; i < 3; i++ {
			start := toc[rng.Intn(len(toc))]
			pairs, err := hypermodel.ClosureMNAttLinkSum(db, start, 5)
			must(err)
			n += len(pairs) + 1
		}
		return n
	})

	// 4. Edit: version a section, substitute its text, commit.
	vs := version.New(db)
	var section hypermodel.NodeID
	for _, id := range toc {
		n, err := db.Node(id)
		must(err)
		if n.Kind == hypermodel.KindText {
			section = id
			break
		}
	}
	step("edit text section (version + edit + save)", func() int {
		_, err := vs.Capture(section)
		must(err)
		must(hypermodel.TextNodeEdit(db, section, true))
		must(db.Commit())
		return 2 // section object + version record
	})

	// 5. Edit a figure.
	if fig, ok := layout.RandomFormNode(rng); ok {
		step("invert figure region (bitmap edit + save)", func() int {
			must(hypermodel.FormNodeEdit(db, fig, hypermodel.Rect{X: 10, Y: 10, W: 40, H: 40}))
			must(db.Commit())
			return 1
		})
	}

	// 6. Undo: restore the section from its version.
	step("undo text edit (restore previous version)", func() int {
		st, info, err := vs.Previous(section)
		must(err)
		must(db.SetText(section, st.Text))
		must(db.Commit())
		_ = info
		return 2
	})

	overall := float64(totalObjects) / totalTime.Seconds()
	fmt.Printf("\nsession: %d object accesses in %s — %.0f objects/second\n",
		totalObjects, totalTime.Round(time.Microsecond), overall)
	switch {
	case overall >= 100 && overall <= 10000:
		fmt.Println("R7: inside the paper's 100–10,000 obj/s interactive band (1988 hardware)")
	case overall > 10000:
		fmt.Println("R7: far above the paper's 100–10,000 obj/s band — 1988's requirement is easy in 2026")
	default:
		fmt.Println("R7: BELOW the interactive band — this system would feel sluggish")
	}
}
