// Archive: the paper's own reading of the level-4 hierarchy — "an
// archive with 5 folders with 5 documents in each folder", documents
// holding chapters, sections and text/bitmap leaves. The example
// builds the archive, derives a table of contents, protects one
// document (R11), versions a section before editing it (R5), and
// answers an ad-hoc query (R12).
//
//	go run ./examples/archive
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"
	"strings"

	"hypermodel"
	"hypermodel/internal/acl"
	"hypermodel/internal/hyper"
	"hypermodel/internal/query"
	"hypermodel/internal/version"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-archive-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hypermodel.OpenOODB(filepath.Join(dir, "archive.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	layout, _, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 1990})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("archive: %d nodes — 5 folders × 5 documents × 5 chapters × 5 sections × 5 leaves\n\n",
		layout.Total())

	// Folders are level 1, documents level 2.
	folderFirst, _ := hyper.LevelIDs(1)
	docFirst, _ := hyper.LevelIDs(2)
	folder := folderFirst
	docs, err := hypermodel.GroupLookup1N(db, folder)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("folder %d holds documents %v\n", folder, docs)

	// Table of contents for the first document: the pre-order 1-N
	// closure, stored back into the database.
	doc := docs[0]
	toc, err := hypermodel.Closure1N(db, doc)
	if err != nil {
		log.Fatal(err)
	}
	if err := hypermodel.SaveNodeList(db, fmt.Sprintf("toc/doc-%d", doc), toc); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("document %d table of contents: %d entries (chapters, sections, leaves)\n\n", doc, len(toc))

	// R11: the first document becomes public read-only, the second
	// public read-write; a link between them still works.
	if err := acl.SetPolicy(db, docFirst, acl.Policy{Public: acl.Read}); err != nil {
		log.Fatal(err)
	}
	if err := acl.SetPolicy(db, docFirst+1, acl.Policy{Public: acl.Read | acl.Write}); err != nil {
		log.Fatal(err)
	}
	guard := acl.NewGuard(db, "visitor")
	chaptersA, err := db.Children(docFirst)
	if err != nil {
		log.Fatal(err)
	}
	chaptersB, err := db.Children(docFirst + 1)
	if err != nil {
		log.Fatal(err)
	}
	if err := guard.SetHundred(chaptersA[0], 1); err != nil {
		fmt.Printf("R11: write into read-only document rejected: %v\n", err)
	}
	if err := guard.SetHundred(chaptersB[0], 1); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R11: write into read-write document accepted\n")
	if err := guard.AddRef(hypermodel.Edge{From: chaptersB[0], To: chaptersA[0], OffsetTo: 3}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R11: hypertext link from the writable document into the protected one created\n\n")

	// R5: version a section's text, edit it, inspect the previous
	// version, and restore.
	rng := rand.New(rand.NewSource(3))
	section := layout.RandomTextNode(rng)
	vs := version.New(db)
	if _, err := vs.Capture(section); err != nil {
		log.Fatal(err)
	}
	if err := hypermodel.TextNodeEdit(db, section, true); err != nil {
		log.Fatal(err)
	}
	prev, info, err := vs.Previous(section)
	if err != nil {
		log.Fatal(err)
	}
	cur, err := db.Text(section)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R5: section %d version %d kept %q..., live text now %q...\n",
		section, info.Version, firstWords(prev.Text, 2), firstWords(cur, 2))
	if err := vs.Restore(section, info.Version); err != nil {
		log.Fatal(err)
	}
	restored, err := db.Text(section)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R5: restored version %d (%q...)\n\n", info.Version, firstWords(restored, 2))

	// R12: an ad-hoc query with its plan.
	q := `select where hundred between 40 and 49 and kind = text limit 5`
	res, plan, err := query.Run(db, 1, hypermodel.NodeID(layout.Total()), q)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R12: %s\n     plan: %s\n     -> %v\n", q, plan, res.IDs)

	// Aggregates work too.
	qa := `select avg hundred where kind = text`
	agg, _, err := query.Run(db, 1, hypermodel.NodeID(layout.Total()), qa)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("R12: %s\n     -> %s\n", qa, agg.Agg)

	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}
}

func firstWords(s string, n int) string {
	words := strings.SplitN(s, " ", n+1)
	if len(words) > n {
		words = words[:n]
	}
	return strings.Join(words, " ")
}
