// Quickstart: open a database, generate the paper's level-4 test
// structure (781 nodes), run a handful of the benchmark operations by
// hand, and print a miniature result table.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"
	"os"
	"path/filepath"

	"hypermodel"
)

func main() {
	log.SetFlags(0)
	dir, err := os.MkdirTemp("", "hm-quickstart-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	db, err := hypermodel.OpenOODB(filepath.Join(dir, "quickstart.db"))
	if err != nil {
		log.Fatal(err)
	}
	defer db.Close()

	// Build the §5.2 test database: a fan-out-5 document hierarchy with
	// TextNode/FormNode leaves, the M-N aggregation, and the weighted
	// reference graph.
	layout, timings, err := hypermodel.Generate(db, hypermodel.GenConfig{LeafLevel: 4, Seed: 42})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d nodes in %v (leaves: %d text + %d form)\n\n",
		layout.Total(), timings.Total.Round(1000000),
		timings.LeafCount-layout.FormCount(), layout.FormCount())

	rng := rand.New(rand.NewSource(7))

	// O1: name lookup by uniqueId.
	id := layout.RandomNode(rng)
	hundred, err := hypermodel.NameLookup(db, id)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O1  nameLookup(%d)          -> hundred = %d\n", id, hundred)

	// O5A: ordered children of a random interior node.
	parent := layout.RandomInternal(rng)
	children, err := hypermodel.GroupLookup1N(db, parent)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O5A groupLookup1N(%d)        -> %v\n", parent, children)

	// O10: pre-order closure from a level-3 node — a table of contents.
	start := layout.RandomClosureStart(rng)
	toc, err := hypermodel.Closure1N(db, start)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O10 closure1N(%d)           -> %d nodes, pre-order\n", start, len(toc))

	// The closure result is storable in the database (§6.5).
	if err := hypermodel.SaveNodeList(db, "quickstart-toc", toc); err != nil {
		log.Fatal(err)
	}
	back, err := hypermodel.LoadNodeList(db, "quickstart-toc")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("    stored and reloaded the closure: %d node references\n", len(back))

	// O16: edit a text node (version1 -> version-2) and restore it.
	tid := layout.RandomTextNode(rng)
	if err := hypermodel.TextNodeEdit(db, tid, true); err != nil {
		log.Fatal(err)
	}
	if err := hypermodel.TextNodeEdit(db, tid, false); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("O16 textNodeEdit(%d)        -> substituted and restored\n", tid)
	if err := db.Commit(); err != nil {
		log.Fatal(err)
	}

	// And the real thing: the §6 protocol (here 5 iterations instead of
	// the paper's 50 to keep the quickstart quick).
	fmt.Println()
	results, err := hypermodel.RunBenchmark(db, layout, hypermodel.BenchConfig{
		Iterations: 5,
		Ops:        []string{"O1", "O3", "O10", "O14"},
	})
	if err != nil {
		log.Fatal(err)
	}
	hypermodel.RenderResults(os.Stdout, "quickstart benchmark (level 4, 5 iterations)", results)
}
